package workload_test

import (
	"strings"
	"testing"
	"testing/quick"

	"determinacy/internal/dom"
	"determinacy/internal/interp"
	"determinacy/internal/ir"
	"determinacy/internal/workload"
)

func TestGeneratorDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		a := workload.RandomProgram(workload.GenConfig{Seed: seed})
		b := workload.RandomProgram(workload.GenConfig{Seed: seed})
		if a != b {
			t.Fatalf("seed %d: generator not deterministic", seed)
		}
	}
	if workload.RandomProgram(workload.GenConfig{Seed: 1}) == workload.RandomProgram(workload.GenConfig{Seed: 2}) {
		t.Error("different seeds produced identical programs")
	}
}

// TestGeneratedProgramsRun: every generated program must compile and run to
// completion without throwing, under varying inputs — the generator's
// core contract for the soundness suite.
func TestGeneratedProgramsRun(t *testing.T) {
	f := func(seed uint64, runSeed uint8, forIn bool) bool {
		src := workload.RandomProgram(workload.GenConfig{Seed: seed % 10000, WithForIn: forIn})
		mod, err := ir.Compile("gen.js", src)
		if err != nil {
			t.Logf("compile failure (seed %d): %v\n%s", seed, err, src)
			return false
		}
		it := interp.New(mod, interp.Options{
			Seed: uint64(runSeed),
			Inputs: map[string]interp.Value{
				"a": interp.NumberVal(float64(runSeed)),
				"b": interp.StringVal("s"),
				"c": interp.BoolVal(runSeed%2 == 0),
			},
		})
		if _, err := it.Run(); err != nil {
			t.Logf("run failure (seed %d): %v\n%s", seed, err, src)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestJQueryWorkloadsRunConcretely(t *testing.T) {
	for _, v := range workload.JQueryVersions {
		v := v
		t.Run(string(v), func(t *testing.T) {
			src := workload.JQuery(v)
			mod, err := ir.Compile("jq.js", src)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			it := interp.New(mod, interp.Options{})
			b := dom.Install(it, dom.NewDocument(dom.Options{}))
			if _, err := it.Run(); err != nil {
				t.Fatalf("run: %v", err)
			}
			if _, err := b.RunHandlers(8); err != nil {
				t.Fatalf("handlers: %v", err)
			}
			// The library must actually have installed its API.
			jq, ok := it.Global.Get("jQuery")
			if !ok || !jq.IsCallable() {
				t.Error("jQuery global missing after initialization")
			}
		})
	}
}

func TestJQueryVersionCharacteristics(t *testing.T) {
	v10 := workload.JQuery(workload.JQ10)
	v11 := workload.JQuery(workload.JQ11)
	v12 := workload.JQuery(workload.JQ12)
	v13 := workload.JQuery(workload.JQ13)
	if !strings.Contains(v10, `"get" + cap(name)`) {
		t.Error("1.0 must build accessor names reflectively")
	}
	if !strings.Contains(v11, "vendor") || !strings.Contains(v11, "userAgent") {
		t.Error("1.1 must derive names from the user agent")
	}
	if !strings.Contains(v12, "jQuery.initialize") {
		t.Error("1.2 must initialize lazily")
	}
	if !strings.Contains(v13, "DOMContentLoaded") {
		t.Error("1.3 must initialize inside an event handler")
	}
}

func TestEvalCorpusShape(t *testing.T) {
	corpus := workload.EvalCorpus()
	if len(corpus) != 28 {
		t.Fatalf("corpus has %d programs, want 28 (paper)", len(corpus))
	}
	runnable := 0
	names := map[string]bool{}
	for _, b := range corpus {
		if names[b.Name] {
			t.Errorf("duplicate benchmark name %s", b.Name)
		}
		names[b.Name] = true
		if b.Runnable {
			runnable++
		}
		if !strings.Contains(b.Source, "eval") {
			t.Errorf("%s contains no eval", b.Name)
		}
	}
	if runnable != 24 {
		t.Errorf("runnable = %d, want 24", runnable)
	}
}

func TestEvalCorpusRunnability(t *testing.T) {
	for _, b := range workload.EvalCorpus() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			mod, err := ir.Compile(b.Name+".js", b.Source)
			if err != nil {
				t.Fatalf("all corpus programs must parse: %v", err)
			}
			it := interp.New(mod, interp.Options{})
			dom.Install(it, dom.NewDocument(dom.Options{}))
			_, err = it.Run()
			if b.Runnable && err != nil {
				t.Errorf("runnable benchmark failed: %v", err)
			}
			if !b.Runnable && err == nil {
				t.Errorf("non-runnable benchmark unexpectedly succeeded")
			}
		})
	}
}
