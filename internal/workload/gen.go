// Package workload provides the program corpora used by tests and
// benchmarks: a seeded random mini-JS program generator (for the
// differential soundness test of Theorem 1), synthetic jQuery-style
// libraries reproducing the per-version characteristics of Table 1, and the
// 28-program eval corpus modeled on the Jensen et al. suite used in §5.2.
package workload

import (
	"fmt"
	"strings"
)

// GenConfig parameterizes the random program generator.
type GenConfig struct {
	// Seed drives the generator's own PRNG (independent of the seeds used
	// to run the generated program).
	Seed uint64
	// MaxStmts bounds the top-level statement count (default 25).
	MaxStmts int
	// MaxDepth bounds statement nesting (default 3).
	MaxDepth int
	// IndetPercent is the percentage of leaf expressions drawn from
	// indeterminate sources (Math.random, __input) — default 25. A negative
	// value means zero: the generated program is fully determinate.
	IndetPercent int
	// WithForIn enables for-in loops.
	WithForIn bool
	// WithEval enables direct eval of generated snippets: determinate
	// arithmetic strings, snippets reading and assigning visible variables,
	// and eval of a string selected by a (possibly indeterminate) condition.
	WithEval bool
	// WithProto enables constructor functions, new-expressions, and
	// post-hoc prototype method/field mutation.
	WithProto bool
	// WithConsole enables console.log statements (observable output).
	WithConsole bool
	// NamePrefix prefixes every generated identifier, letting callers embed
	// several generated fragments in one program without collisions.
	NamePrefix string
}

type gen struct {
	cfg    GenConfig
	rng    uint64
	b      strings.Builder
	indent int
	names  int
	// scopes track declared variables by kind so generated programs never
	// throw (only initialized variables are read, only functions called).
	scopes []*genScope
}

type genScope struct {
	nums    []string
	strs    []string
	bools   []string
	objs    []objInfo
	arrs    []string
	funcs   []fnInfo
	ctors   []*ctorInfo
	isFunc  bool
	loopVar string
}

type objInfo struct {
	name  string
	props []string
	// ctor is non-nil for instances created with new; it carries the
	// prototype-provided fields and methods visible through the instance.
	ctor *ctorInfo
}

// ctorInfo tracks a generated constructor function. Prototype mutations
// append to protoProps/methods so later expressions (and the final
// observation block) can read the mutated prototype through instances.
type ctorInfo struct {
	name       string
	params     int
	ownProps   []string
	protoProps []string
	methods    []string
}

type fnInfo struct {
	name   string
	params int
}

// RandomProgram generates a deterministic, terminating, throw-free mini-JS
// program from the seed. Programs mix determinate computation with
// indeterminate sources, conditionals (exercising post-branch marking and
// counterfactual execution), bounded loops, closures, objects with static
// and computed property accesses, and optional for-in loops.
func RandomProgram(cfg GenConfig) string {
	if cfg.MaxStmts == 0 {
		cfg.MaxStmts = 25
	}
	if cfg.MaxDepth == 0 {
		cfg.MaxDepth = 3
	}
	if cfg.IndetPercent == 0 {
		cfg.IndetPercent = 25
	}
	if cfg.IndetPercent < 0 {
		cfg.IndetPercent = 0
	}
	g := &gen{cfg: cfg, rng: cfg.Seed*6364136223846793005 + 1442695040888963407}
	g.scopes = []*genScope{{isFunc: true}}
	n := 5 + g.intn(cfg.MaxStmts)
	for i := 0; i < n; i++ {
		g.stmt(cfg.MaxDepth)
	}
	// Read every variable at the end so the analysis records facts for the
	// final state and the checker compares them.
	sc := g.scopes[0]
	for _, v := range sc.nums {
		g.line("__observe(%q, %s);", v, v)
	}
	for _, v := range sc.strs {
		g.line("__observe(%q, %s);", v, v)
	}
	for _, v := range sc.bools {
		g.line("__observe(%q, %s);", v, v)
	}
	for _, o := range sc.objs {
		for _, p := range o.props {
			g.line("__observe(%q, %s.%s);", o.name+"."+p, o.name, p)
		}
		if o.ctor != nil {
			for _, p := range o.ctor.protoProps {
				g.line("__observe(%q, %s.%s);", o.name+"."+p, o.name, p)
			}
			for _, m := range o.ctor.methods {
				g.line("__observe(%q, %s.%s());", o.name+"."+m+"()", o.name, m)
			}
		}
	}
	return g.b.String()
}

func (g *gen) next() uint64 {
	g.rng ^= g.rng >> 12
	g.rng ^= g.rng << 25
	g.rng ^= g.rng >> 27
	return g.rng * 2685821657736338717
}

func (g *gen) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(g.next() % uint64(n))
}

func (g *gen) pct(p int) bool { return g.intn(100) < p }

func (g *gen) fresh(prefix string) string {
	g.names++
	return fmt.Sprintf("%s%s%d", g.cfg.NamePrefix, prefix, g.names)
}

func (g *gen) line(format string, args ...any) {
	g.b.WriteString(strings.Repeat("  ", g.indent))
	fmt.Fprintf(&g.b, format, args...)
	g.b.WriteByte('\n')
}

func (g *gen) cur() *genScope { return g.scopes[len(g.scopes)-1] }

// allNums collects visible numeric variables across scopes, including loop
// variables (read-only).
func (g *gen) allNums() []string {
	var out []string
	for _, sc := range g.scopes {
		out = append(out, sc.nums...)
		if sc.loopVar != "" {
			out = append(out, sc.loopVar)
		}
	}
	return out
}

// assignableNums excludes loop variables, which must never be written lest
// generated loops diverge.
func (g *gen) assignableNums() []string {
	var out []string
	for _, sc := range g.scopes {
		out = append(out, sc.nums...)
	}
	return out
}

func (g *gen) allStrs() []string {
	var out []string
	for _, sc := range g.scopes {
		out = append(out, sc.strs...)
	}
	return out
}

func (g *gen) allObjs() []objInfo {
	var out []objInfo
	for _, sc := range g.scopes {
		out = append(out, sc.objs...)
	}
	return out
}

func (g *gen) allFuncs() []fnInfo {
	var out []fnInfo
	for _, sc := range g.scopes {
		out = append(out, sc.funcs...)
	}
	return out
}

func (g *gen) allCtors() []*ctorInfo {
	var out []*ctorInfo
	for _, sc := range g.scopes {
		out = append(out, sc.ctors...)
	}
	return out
}

// ---------------------------------------------------------------------------
// Expressions

// numExpr emits a numeric expression of bounded depth.
func (g *gen) numExpr(depth int) string {
	if depth <= 0 || g.pct(30) {
		return g.numLeaf()
	}
	switch g.intn(7) {
	case 0:
		return fmt.Sprintf("(%s %s %s)", g.numExpr(depth-1), g.pick("+", "-", "*"), g.numExpr(depth-1))
	case 1:
		return fmt.Sprintf("Math.floor(%s)", g.numExpr(depth-1))
	case 2:
		return fmt.Sprintf("(-%s)", g.numExpr(depth-1))
	case 3:
		if objs := g.allObjs(); len(objs) > 0 {
			o := objs[g.intn(len(objs))]
			props := o.props
			if o.ctor != nil && len(o.ctor.protoProps) > 0 {
				props = append(append([]string{}, props...), o.ctor.protoProps...)
			}
			if len(props) > 0 {
				return fmt.Sprintf("%s.%s", o.name, props[g.intn(len(props))])
			}
		}
		return g.numLeaf()
	case 6:
		if objs := g.allObjs(); len(objs) > 0 {
			o := objs[g.intn(len(objs))]
			if o.ctor != nil && len(o.ctor.methods) > 0 {
				return fmt.Sprintf("%s.%s()", o.name, o.ctor.methods[g.intn(len(o.ctor.methods))])
			}
		}
		return g.numLeaf()
	case 4:
		if fns := g.allFuncs(); len(fns) > 0 {
			f := fns[g.intn(len(fns))]
			args := make([]string, f.params)
			for i := range args {
				args[i] = g.numExpr(depth - 1)
			}
			return fmt.Sprintf("%s(%s)", f.name, strings.Join(args, ", "))
		}
		return g.numLeaf()
	default:
		return fmt.Sprintf("(%s ? %s : %s)", g.boolExpr(depth-1), g.numExpr(depth-1), g.numExpr(depth-1))
	}
}

func (g *gen) numLeaf() string {
	if g.pct(g.cfg.IndetPercent) {
		if g.pct(50) {
			return "Math.random()"
		}
		return fmt.Sprintf("__input(%q)", g.pick("a", "b", "c"))
	}
	if ns := g.allNums(); len(ns) > 0 && g.pct(60) {
		return ns[g.intn(len(ns))]
	}
	return fmt.Sprint(g.intn(100))
}

func (g *gen) strExpr(depth int) string {
	if depth <= 0 || g.pct(40) {
		return g.strLeaf()
	}
	switch g.intn(4) {
	case 0:
		return fmt.Sprintf("(%s + %s)", g.strExpr(depth-1), g.strExpr(depth-1))
	case 1:
		return fmt.Sprintf("(\"n\" + %s)", g.numExpr(depth-1))
	case 2:
		return fmt.Sprintf("%s.toUpperCase()", g.strLeaf())
	default:
		return fmt.Sprintf("%s.substr(0, 2)", g.strLeaf())
	}
}

func (g *gen) strLeaf() string {
	if ss := g.allStrs(); len(ss) > 0 && g.pct(60) {
		return ss[g.intn(len(ss))]
	}
	return fmt.Sprintf("%q", g.pick("alpha", "beta", "gamma", "delta", "x", "yy"))
}

func (g *gen) boolExpr(depth int) string {
	if depth <= 0 || g.pct(40) {
		return fmt.Sprintf("(%s %s %s)", g.numExpr(0), g.pick("<", ">", "<=", ">=", "===", "!=="), g.numExpr(0))
	}
	switch g.intn(3) {
	case 0:
		return fmt.Sprintf("(%s && %s)", g.boolExpr(depth-1), g.boolExpr(depth-1))
	case 1:
		return fmt.Sprintf("(%s || %s)", g.boolExpr(depth-1), g.boolExpr(depth-1))
	default:
		return fmt.Sprintf("(!%s)", g.boolExpr(depth-1))
	}
}

func (g *gen) pick(opts ...string) string { return opts[g.intn(len(opts))] }

// ---------------------------------------------------------------------------
// Statements

func (g *gen) stmt(depth int) {
	sc := g.cur()
	nchoices := 12
	if g.cfg.WithEval {
		nchoices++ // 12
	}
	if g.cfg.WithProto {
		nchoices += 2 // 13, 14
	}
	if g.cfg.WithConsole {
		nchoices++ // 15
	}
	choice := g.intn(nchoices)
	// Remap the optional slots so each enabled feature gets a stable share
	// regardless of which other features are on.
	if choice >= 12 {
		slot := choice - 12
		if !g.cfg.WithEval {
			slot++ // skip the eval slot
		}
		if !g.cfg.WithProto && slot >= 1 {
			slot += 2 // skip the proto slots
		}
		choice = 12 + slot
	}
	switch {
	case choice <= 2: // numeric var
		name := g.fresh("n")
		g.line("var %s = %s;", name, g.numExpr(2))
		sc.nums = append(sc.nums, name)
	case choice == 3: // string var
		name := g.fresh("s")
		g.line("var %s = %s;", name, g.strExpr(2))
		sc.strs = append(sc.strs, name)
	case choice == 4: // object literal
		name := g.fresh("o")
		nprops := 1 + g.intn(3)
		var props, names []string
		for i := 0; i < nprops; i++ {
			p := fmt.Sprintf("p%d", i)
			props = append(props, fmt.Sprintf("%s: %s", p, g.numExpr(1)))
			names = append(names, p)
		}
		g.line("var %s = {%s};", name, strings.Join(props, ", "))
		sc.objs = append(sc.objs, objInfo{name: name, props: names})
	case choice == 5: // assignment
		if ns := g.assignableNums(); len(ns) > 0 {
			g.line("%s = %s;", ns[g.intn(len(ns))], g.numExpr(2))
		} else {
			name := g.fresh("n")
			g.line("var %s = %s;", name, g.numExpr(2))
			sc.nums = append(sc.nums, name)
		}
	case choice == 6: // property write (static or computed)
		if objs := g.allObjs(); len(objs) > 0 {
			o := objs[g.intn(len(objs))]
			if g.pct(70) && len(o.props) > 0 {
				g.line("%s.%s = %s;", o.name, o.props[g.intn(len(o.props))], g.numExpr(1))
			} else {
				g.line("%s[%s] = %s;", o.name, g.strExpr(1), g.numExpr(1))
			}
		} else {
			g.stmtFallback()
		}
	case choice == 7 && depth > 0: // if / if-else
		g.line("if (%s) {", g.boolExpr(1))
		g.nest(depth)
		if g.pct(50) {
			g.line("} else {")
			g.nest(depth)
		}
		g.line("}")
	case choice == 8 && depth > 0: // bounded for loop
		iv := g.fresh("i")
		g.line("for (var %s = 0; %s < %d; %s++) {", iv, iv, 1+g.intn(4), iv)
		g.scopes = append(g.scopes, &genScope{loopVar: iv})
		g.indent++
		n := 1 + g.intn(3)
		for i := 0; i < n; i++ {
			g.stmt(depth - 1)
		}
		g.indent--
		g.scopes = g.scopes[:len(g.scopes)-1]
		g.line("}")
	case choice == 9 && depth > 0: // function declaration
		name := g.fresh("f")
		params := g.intn(3)
		ps := make([]string, params)
		for i := range ps {
			ps[i] = fmt.Sprintf("a%d", i)
		}
		g.line("function %s(%s) {", name, strings.Join(ps, ", "))
		fs := &genScope{isFunc: true, nums: append([]string{}, ps...)}
		g.scopes = append(g.scopes, fs)
		g.indent++
		n := 1 + g.intn(3)
		for i := 0; i < n; i++ {
			g.stmt(depth - 1)
		}
		g.line("return %s;", g.numExpr(1))
		g.indent--
		g.scopes = g.scopes[:len(g.scopes)-1]
		g.line("}")
		sc.funcs = append(sc.funcs, fnInfo{name: name, params: params})
	case choice == 10 && g.cfg.WithForIn: // for-in over a known object
		if objs := g.allObjs(); len(objs) > 0 {
			o := objs[g.intn(len(objs))]
			kv := g.fresh("k")
			acc := g.fresh("s")
			g.line("var %s = \"\";", acc)
			sc.strs = append(sc.strs, acc)
			g.line("for (var %s in %s) { %s = %s + %s; }", kv, o.name, acc, acc, kv)
		} else {
			g.stmtFallback()
		}
	case choice == 11 && depth > 0:
		g.tryCatch(depth)
	case choice == 12:
		g.evalStmt()
	case choice == 13:
		g.ctorDecl()
	case choice == 14:
		if g.pct(60) {
			g.newInstance()
		} else {
			g.protoMutate()
		}
	case choice == 15:
		if g.pct(50) {
			g.line("console.log(%s);", g.numExpr(1))
		} else {
			g.line("console.log(%s);", g.strExpr(1))
		}
	default:
		g.whileLoop(depth)
	}
}

// evalStmt emits a direct eval call. The eval'd strings are always valid
// single expressions, so generated programs stay throw-free even when the
// string is selected by an indeterminate condition.
func (g *gen) evalStmt() {
	sc := g.cur()
	name := g.fresh("n")
	ns := g.assignableNums()
	switch c := g.intn(3); {
	case c == 1 && len(ns) > 0:
		// Eval reading — or assigning — a variable visible at the call site.
		v := ns[g.intn(len(ns))]
		if g.pct(50) {
			g.line("var %s = eval(%q);", name, fmt.Sprintf("%s + %d", v, g.intn(10)))
		} else {
			g.line("var %s = eval(%q);", name, fmt.Sprintf("%s = %s + %d", v, v, 1+g.intn(5)))
		}
	case c == 2:
		// The string itself is chosen by a possibly-indeterminate condition;
		// both candidates are determinate arithmetic.
		a := fmt.Sprintf("%d + %d", g.intn(20), g.intn(20))
		b := fmt.Sprintf("%d * %d", 1+g.intn(9), 1+g.intn(9))
		g.line("var %s = eval(%s ? %q : %q);", name, g.boolExpr(1), a, b)
	default:
		// Determinate literal arithmetic.
		expr := fmt.Sprintf("%d %s (%d + %d)", g.intn(50), g.pick("+", "-", "*"), g.intn(9), 1+g.intn(9))
		g.line("var %s = eval(%q);", name, expr)
	}
	sc.nums = append(sc.nums, name)
}

// ctorDecl emits a constructor function storing its parameters as own
// properties, a prototype method reading that state, and optionally an
// initial prototype data field.
func (g *gen) ctorDecl() {
	sc := g.cur()
	name := g.fresh("C")
	ci := &ctorInfo{name: name, params: 1 + g.intn(2)}
	ps := make([]string, ci.params)
	for i := range ps {
		ps[i] = fmt.Sprintf("a%d", i)
	}
	g.line("function %s(%s) {", name, strings.Join(ps, ", "))
	g.indent++
	for i, p := range ps {
		prop := fmt.Sprintf("p%d", i)
		g.line("this.%s = %s;", prop, p)
		ci.ownProps = append(ci.ownProps, prop)
	}
	if g.pct(50) {
		prop := fmt.Sprintf("p%d", len(ps))
		g.line("this.%s = %s;", prop, g.numExpr(1))
		ci.ownProps = append(ci.ownProps, prop)
	}
	g.indent--
	g.line("}")
	m := "m0"
	g.line("%s.prototype.%s = function () { return this.%s %s %s; };",
		name, m, ci.ownProps[g.intn(len(ci.ownProps))], g.pick("+", "-", "*"), g.numLeaf())
	ci.methods = append(ci.methods, m)
	if g.pct(60) {
		fld := "q0"
		g.line("%s.prototype.%s = %s;", name, fld, g.numExpr(1))
		ci.protoProps = append(ci.protoProps, fld)
	}
	sc.ctors = append(sc.ctors, ci)
}

// newInstance constructs an instance of a visible constructor and tracks it
// as an object whose own and prototype-provided properties are readable.
func (g *gen) newInstance() {
	ctors := g.allCtors()
	if len(ctors) == 0 {
		g.stmtFallback()
		return
	}
	ci := ctors[g.intn(len(ctors))]
	name := g.fresh("o")
	args := make([]string, ci.params)
	for i := range args {
		args[i] = g.numExpr(1)
	}
	g.line("var %s = new %s(%s);", name, ci.name, strings.Join(args, ", "))
	g.cur().objs = append(g.cur().objs, objInfo{name: name, props: ci.ownProps, ctor: ci})
}

// protoMutate either adds a fresh data field to a constructor's prototype —
// becoming visible through instances created both before and after — or
// replaces an existing prototype method.
func (g *gen) protoMutate() {
	ctors := g.allCtors()
	if len(ctors) == 0 {
		g.stmtFallback()
		return
	}
	ci := ctors[g.intn(len(ctors))]
	if g.pct(50) || len(ci.methods) == 0 {
		fld := fmt.Sprintf("q%d", len(ci.protoProps))
		g.line("%s.prototype.%s = %s;", ci.name, fld, g.numExpr(1))
		ci.protoProps = append(ci.protoProps, fld)
	} else {
		// The replacement body sticks to leaf expressions: a generated call in
		// here could reach the method being replaced and recurse forever.
		m := ci.methods[g.intn(len(ci.methods))]
		g.line("%s.prototype.%s = function () { return %s %s %s; };",
			ci.name, m, g.numLeaf(), g.pick("+", "-", "*"), g.numLeaf())
	}
}

// tryCatch emits a try/catch whose throw is guarded by a (possibly
// indeterminate) condition, exercising the path-indeterminate exception
// handling of the instrumented semantics.
func (g *gen) tryCatch(depth int) {
	sc := g.cur()
	caught := g.fresh("n")
	g.line("var %s = 0;", caught)
	sc.nums = append(sc.nums, caught)
	ev := g.fresh("e")
	g.line("try {")
	g.indent++
	g.line("if (%s) { throw %s; }", g.boolExpr(1), g.numExpr(1))
	if depth > 1 {
		g.scopes = append(g.scopes, &genScope{})
		g.stmt(depth - 1)
		g.scopes = g.scopes[:len(g.scopes)-1]
	}
	g.indent--
	g.line("} catch (%s) {", ev)
	g.indent++
	g.line("%s = %s + 1;", caught, ev)
	g.indent--
	g.line("}")
}

// whileLoop emits a while loop bounded by a counter but with a possibly
// indeterminate early-exit condition, exercising the loop-continuation
// frames and the counterfactual loop tail.
func (g *gen) whileLoop(depth int) {
	if depth <= 0 {
		g.stmtFallback()
		return
	}
	w := g.fresh("w")
	g.line("var %s = 0;", w)
	g.line("while (%s < %d && %s < %s) {", w, 2+g.intn(4), w, g.numExpr(1))
	g.scopes = append(g.scopes, &genScope{loopVar: w})
	g.indent++
	n := 1 + g.intn(2)
	for i := 0; i < n; i++ {
		g.stmt(depth - 1)
	}
	g.line("%s = %s + 1;", w, w)
	g.indent--
	g.scopes = g.scopes[:len(g.scopes)-1]
	g.line("}")
	g.cur().nums = append(g.cur().nums, w)
}

func (g *gen) stmtFallback() {
	name := g.fresh("n")
	g.line("var %s = %s;", name, g.numExpr(1))
	g.cur().nums = append(g.cur().nums, name)
}

func (g *gen) nest(depth int) {
	g.scopes = append(g.scopes, &genScope{})
	g.indent++
	n := 1 + g.intn(3)
	for i := 0; i < n; i++ {
		g.stmt(depth - 1)
	}
	g.indent--
	g.scopes = g.scopes[:len(g.scopes)-1]
}
