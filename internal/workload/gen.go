// Package workload provides the program corpora used by tests and
// benchmarks: a seeded random mini-JS program generator (for the
// differential soundness test of Theorem 1), synthetic jQuery-style
// libraries reproducing the per-version characteristics of Table 1, and the
// 28-program eval corpus modeled on the Jensen et al. suite used in §5.2.
package workload

import (
	"fmt"
	"strings"
)

// GenConfig parameterizes the random program generator.
type GenConfig struct {
	// Seed drives the generator's own PRNG (independent of the seeds used
	// to run the generated program).
	Seed uint64
	// MaxStmts bounds the top-level statement count (default 25).
	MaxStmts int
	// MaxDepth bounds statement nesting (default 3).
	MaxDepth int
	// IndetPercent is the percentage of leaf expressions drawn from
	// indeterminate sources (Math.random, __input) — default 25.
	IndetPercent int
	// WithForIn enables for-in loops.
	WithForIn bool
	// NamePrefix prefixes every generated identifier, letting callers embed
	// several generated fragments in one program without collisions.
	NamePrefix string
}

type gen struct {
	cfg    GenConfig
	rng    uint64
	b      strings.Builder
	indent int
	names  int
	// scopes track declared variables by kind so generated programs never
	// throw (only initialized variables are read, only functions called).
	scopes []*genScope
}

type genScope struct {
	nums    []string
	strs    []string
	bools   []string
	objs    []objInfo
	arrs    []string
	funcs   []fnInfo
	isFunc  bool
	loopVar string
}

type objInfo struct {
	name  string
	props []string
}

type fnInfo struct {
	name   string
	params int
}

// RandomProgram generates a deterministic, terminating, throw-free mini-JS
// program from the seed. Programs mix determinate computation with
// indeterminate sources, conditionals (exercising post-branch marking and
// counterfactual execution), bounded loops, closures, objects with static
// and computed property accesses, and optional for-in loops.
func RandomProgram(cfg GenConfig) string {
	if cfg.MaxStmts == 0 {
		cfg.MaxStmts = 25
	}
	if cfg.MaxDepth == 0 {
		cfg.MaxDepth = 3
	}
	if cfg.IndetPercent == 0 {
		cfg.IndetPercent = 25
	}
	g := &gen{cfg: cfg, rng: cfg.Seed*6364136223846793005 + 1442695040888963407}
	g.scopes = []*genScope{{isFunc: true}}
	n := 5 + g.intn(cfg.MaxStmts)
	for i := 0; i < n; i++ {
		g.stmt(cfg.MaxDepth)
	}
	// Read every variable at the end so the analysis records facts for the
	// final state and the checker compares them.
	sc := g.scopes[0]
	for _, v := range sc.nums {
		g.line("__observe(%q, %s);", v, v)
	}
	for _, v := range sc.strs {
		g.line("__observe(%q, %s);", v, v)
	}
	for _, v := range sc.bools {
		g.line("__observe(%q, %s);", v, v)
	}
	for _, o := range sc.objs {
		for _, p := range o.props {
			g.line("__observe(%q, %s.%s);", o.name+"."+p, o.name, p)
		}
	}
	return g.b.String()
}

func (g *gen) next() uint64 {
	g.rng ^= g.rng >> 12
	g.rng ^= g.rng << 25
	g.rng ^= g.rng >> 27
	return g.rng * 2685821657736338717
}

func (g *gen) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(g.next() % uint64(n))
}

func (g *gen) pct(p int) bool { return g.intn(100) < p }

func (g *gen) fresh(prefix string) string {
	g.names++
	return fmt.Sprintf("%s%s%d", g.cfg.NamePrefix, prefix, g.names)
}

func (g *gen) line(format string, args ...any) {
	g.b.WriteString(strings.Repeat("  ", g.indent))
	fmt.Fprintf(&g.b, format, args...)
	g.b.WriteByte('\n')
}

func (g *gen) cur() *genScope { return g.scopes[len(g.scopes)-1] }

// allNums collects visible numeric variables across scopes, including loop
// variables (read-only).
func (g *gen) allNums() []string {
	var out []string
	for _, sc := range g.scopes {
		out = append(out, sc.nums...)
		if sc.loopVar != "" {
			out = append(out, sc.loopVar)
		}
	}
	return out
}

// assignableNums excludes loop variables, which must never be written lest
// generated loops diverge.
func (g *gen) assignableNums() []string {
	var out []string
	for _, sc := range g.scopes {
		out = append(out, sc.nums...)
	}
	return out
}

func (g *gen) allStrs() []string {
	var out []string
	for _, sc := range g.scopes {
		out = append(out, sc.strs...)
	}
	return out
}

func (g *gen) allObjs() []objInfo {
	var out []objInfo
	for _, sc := range g.scopes {
		out = append(out, sc.objs...)
	}
	return out
}

func (g *gen) allFuncs() []fnInfo {
	var out []fnInfo
	for _, sc := range g.scopes {
		out = append(out, sc.funcs...)
	}
	return out
}

// ---------------------------------------------------------------------------
// Expressions

// numExpr emits a numeric expression of bounded depth.
func (g *gen) numExpr(depth int) string {
	if depth <= 0 || g.pct(30) {
		return g.numLeaf()
	}
	switch g.intn(6) {
	case 0:
		return fmt.Sprintf("(%s %s %s)", g.numExpr(depth-1), g.pick("+", "-", "*"), g.numExpr(depth-1))
	case 1:
		return fmt.Sprintf("Math.floor(%s)", g.numExpr(depth-1))
	case 2:
		return fmt.Sprintf("(-%s)", g.numExpr(depth-1))
	case 3:
		if objs := g.allObjs(); len(objs) > 0 {
			o := objs[g.intn(len(objs))]
			if len(o.props) > 0 {
				return fmt.Sprintf("%s.%s", o.name, o.props[g.intn(len(o.props))])
			}
		}
		return g.numLeaf()
	case 4:
		if fns := g.allFuncs(); len(fns) > 0 {
			f := fns[g.intn(len(fns))]
			args := make([]string, f.params)
			for i := range args {
				args[i] = g.numExpr(depth - 1)
			}
			return fmt.Sprintf("%s(%s)", f.name, strings.Join(args, ", "))
		}
		return g.numLeaf()
	default:
		return fmt.Sprintf("(%s ? %s : %s)", g.boolExpr(depth-1), g.numExpr(depth-1), g.numExpr(depth-1))
	}
}

func (g *gen) numLeaf() string {
	if g.pct(g.cfg.IndetPercent) {
		if g.pct(50) {
			return "Math.random()"
		}
		return fmt.Sprintf("__input(%q)", g.pick("a", "b", "c"))
	}
	if ns := g.allNums(); len(ns) > 0 && g.pct(60) {
		return ns[g.intn(len(ns))]
	}
	return fmt.Sprint(g.intn(100))
}

func (g *gen) strExpr(depth int) string {
	if depth <= 0 || g.pct(40) {
		return g.strLeaf()
	}
	switch g.intn(4) {
	case 0:
		return fmt.Sprintf("(%s + %s)", g.strExpr(depth-1), g.strExpr(depth-1))
	case 1:
		return fmt.Sprintf("(\"n\" + %s)", g.numExpr(depth-1))
	case 2:
		return fmt.Sprintf("%s.toUpperCase()", g.strLeaf())
	default:
		return fmt.Sprintf("%s.substr(0, 2)", g.strLeaf())
	}
}

func (g *gen) strLeaf() string {
	if ss := g.allStrs(); len(ss) > 0 && g.pct(60) {
		return ss[g.intn(len(ss))]
	}
	return fmt.Sprintf("%q", g.pick("alpha", "beta", "gamma", "delta", "x", "yy"))
}

func (g *gen) boolExpr(depth int) string {
	if depth <= 0 || g.pct(40) {
		return fmt.Sprintf("(%s %s %s)", g.numExpr(0), g.pick("<", ">", "<=", ">=", "===", "!=="), g.numExpr(0))
	}
	switch g.intn(3) {
	case 0:
		return fmt.Sprintf("(%s && %s)", g.boolExpr(depth-1), g.boolExpr(depth-1))
	case 1:
		return fmt.Sprintf("(%s || %s)", g.boolExpr(depth-1), g.boolExpr(depth-1))
	default:
		return fmt.Sprintf("(!%s)", g.boolExpr(depth-1))
	}
}

func (g *gen) pick(opts ...string) string { return opts[g.intn(len(opts))] }

// ---------------------------------------------------------------------------
// Statements

func (g *gen) stmt(depth int) {
	sc := g.cur()
	choice := g.intn(12)
	switch {
	case choice <= 2: // numeric var
		name := g.fresh("n")
		g.line("var %s = %s;", name, g.numExpr(2))
		sc.nums = append(sc.nums, name)
	case choice == 3: // string var
		name := g.fresh("s")
		g.line("var %s = %s;", name, g.strExpr(2))
		sc.strs = append(sc.strs, name)
	case choice == 4: // object literal
		name := g.fresh("o")
		nprops := 1 + g.intn(3)
		var props, names []string
		for i := 0; i < nprops; i++ {
			p := fmt.Sprintf("p%d", i)
			props = append(props, fmt.Sprintf("%s: %s", p, g.numExpr(1)))
			names = append(names, p)
		}
		g.line("var %s = {%s};", name, strings.Join(props, ", "))
		sc.objs = append(sc.objs, objInfo{name: name, props: names})
	case choice == 5: // assignment
		if ns := g.assignableNums(); len(ns) > 0 {
			g.line("%s = %s;", ns[g.intn(len(ns))], g.numExpr(2))
		} else {
			name := g.fresh("n")
			g.line("var %s = %s;", name, g.numExpr(2))
			sc.nums = append(sc.nums, name)
		}
	case choice == 6: // property write (static or computed)
		if objs := g.allObjs(); len(objs) > 0 {
			o := objs[g.intn(len(objs))]
			if g.pct(70) && len(o.props) > 0 {
				g.line("%s.%s = %s;", o.name, o.props[g.intn(len(o.props))], g.numExpr(1))
			} else {
				g.line("%s[%s] = %s;", o.name, g.strExpr(1), g.numExpr(1))
			}
		} else {
			g.stmtFallback()
		}
	case choice == 7 && depth > 0: // if / if-else
		g.line("if (%s) {", g.boolExpr(1))
		g.nest(depth)
		if g.pct(50) {
			g.line("} else {")
			g.nest(depth)
		}
		g.line("}")
	case choice == 8 && depth > 0: // bounded for loop
		iv := g.fresh("i")
		g.line("for (var %s = 0; %s < %d; %s++) {", iv, iv, 1+g.intn(4), iv)
		g.scopes = append(g.scopes, &genScope{loopVar: iv})
		g.indent++
		n := 1 + g.intn(3)
		for i := 0; i < n; i++ {
			g.stmt(depth - 1)
		}
		g.indent--
		g.scopes = g.scopes[:len(g.scopes)-1]
		g.line("}")
	case choice == 9 && depth > 0: // function declaration
		name := g.fresh("f")
		params := g.intn(3)
		ps := make([]string, params)
		for i := range ps {
			ps[i] = fmt.Sprintf("a%d", i)
		}
		g.line("function %s(%s) {", name, strings.Join(ps, ", "))
		fs := &genScope{isFunc: true, nums: append([]string{}, ps...)}
		g.scopes = append(g.scopes, fs)
		g.indent++
		n := 1 + g.intn(3)
		for i := 0; i < n; i++ {
			g.stmt(depth - 1)
		}
		g.line("return %s;", g.numExpr(1))
		g.indent--
		g.scopes = g.scopes[:len(g.scopes)-1]
		g.line("}")
		sc.funcs = append(sc.funcs, fnInfo{name: name, params: params})
	case choice == 10 && g.cfg.WithForIn: // for-in over a known object
		if objs := g.allObjs(); len(objs) > 0 {
			o := objs[g.intn(len(objs))]
			kv := g.fresh("k")
			acc := g.fresh("s")
			g.line("var %s = \"\";", acc)
			sc.strs = append(sc.strs, acc)
			g.line("for (var %s in %s) { %s = %s + %s; }", kv, o.name, acc, acc, kv)
		} else {
			g.stmtFallback()
		}
	case choice == 11 && depth > 0:
		g.tryCatch(depth)
	default:
		g.whileLoop(depth)
	}
}

// tryCatch emits a try/catch whose throw is guarded by a (possibly
// indeterminate) condition, exercising the path-indeterminate exception
// handling of the instrumented semantics.
func (g *gen) tryCatch(depth int) {
	sc := g.cur()
	caught := g.fresh("n")
	g.line("var %s = 0;", caught)
	sc.nums = append(sc.nums, caught)
	ev := g.fresh("e")
	g.line("try {")
	g.indent++
	g.line("if (%s) { throw %s; }", g.boolExpr(1), g.numExpr(1))
	if depth > 1 {
		g.scopes = append(g.scopes, &genScope{})
		g.stmt(depth - 1)
		g.scopes = g.scopes[:len(g.scopes)-1]
	}
	g.indent--
	g.line("} catch (%s) {", ev)
	g.indent++
	g.line("%s = %s + 1;", caught, ev)
	g.indent--
	g.line("}")
}

// whileLoop emits a while loop bounded by a counter but with a possibly
// indeterminate early-exit condition, exercising the loop-continuation
// frames and the counterfactual loop tail.
func (g *gen) whileLoop(depth int) {
	if depth <= 0 {
		g.stmtFallback()
		return
	}
	w := g.fresh("w")
	g.line("var %s = 0;", w)
	g.line("while (%s < %d && %s < %s) {", w, 2+g.intn(4), w, g.numExpr(1))
	g.scopes = append(g.scopes, &genScope{loopVar: w})
	g.indent++
	n := 1 + g.intn(2)
	for i := 0; i < n; i++ {
		g.stmt(depth - 1)
	}
	g.line("%s = %s + 1;", w, w)
	g.indent--
	g.scopes = g.scopes[:len(g.scopes)-1]
	g.line("}")
	g.cur().nums = append(g.cur().nums, w)
}

func (g *gen) stmtFallback() {
	name := g.fresh("n")
	g.line("var %s = %s;", name, g.numExpr(1))
	g.cur().nums = append(g.cur().nums, name)
}

func (g *gen) nest(depth int) {
	g.scopes = append(g.scopes, &genScope{})
	g.indent++
	n := 1 + g.intn(3)
	for i := 0; i < n; i++ {
		g.stmt(depth - 1)
	}
	g.indent--
	g.scopes = g.scopes[:len(g.scopes)-1]
}
