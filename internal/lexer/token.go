// Package lexer tokenizes mini-JS source code.
//
// Mini-JS is the JavaScript subset implemented by this repository: it is a
// strict superset of the paper's µJS calculus (Figure 5) and covers the
// features exercised by the paper's examples — closures, prototypes,
// dynamic property accesses, eval, typeof, for-in, and exceptions.
package lexer

import "fmt"

// Kind classifies a token.
type Kind int

// Token kinds. Punct covers all operators and delimiters; the Lit field of
// the token distinguishes them.
const (
	EOF Kind = iota
	Ident
	Number
	String
	Punct
	Keyword
)

var kindNames = [...]string{
	EOF:     "EOF",
	Ident:   "identifier",
	Number:  "number",
	String:  "string",
	Punct:   "punctuator",
	Keyword: "keyword",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Pos is a source position. Line and Col are 1-based; Offset is the byte
// offset into the source.
type Pos struct {
	Line   int
	Col    int
	Offset int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// IsValid reports whether p refers to an actual source location.
func (p Pos) IsValid() bool { return p.Line > 0 }

// Token is a single lexical token. For Number tokens Num holds the parsed
// value; for String tokens Str holds the decoded value; Lit always holds the
// literal text (for strings, the text without quotes, undecoded).
type Token struct {
	Kind Kind
	Lit  string
	Num  float64
	Str  string
	Pos  Pos
}

func (t Token) String() string {
	switch t.Kind {
	case EOF:
		return "EOF"
	case String:
		return fmt.Sprintf("%q", t.Str)
	default:
		return t.Lit
	}
}

// keywords is the set of reserved words of mini-JS. "undefined" is lexed as
// an identifier and resolved by the parser, matching JavaScript where it is
// a global binding rather than a keyword.
var keywords = map[string]bool{
	"var": true, "function": true, "return": true,
	"if": true, "else": true, "while": true, "do": true, "for": true,
	"in": true, "new": true, "delete": true, "typeof": true,
	"instanceof": true, "null": true, "true": true, "false": true,
	"this": true, "try": true, "catch": true, "finally": true,
	"throw": true, "break": true, "continue": true,
	"switch": true, "case": true, "default": true,
}

// IsKeyword reports whether s is a reserved word of mini-JS.
func IsKeyword(s string) bool { return keywords[s] }
