package lexer

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
	"unicode/utf8"
)

// Error is a lexical error with a source position.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Lexer scans mini-JS source into tokens. Create one with New and call Next
// repeatedly; after the end of input Next returns EOF tokens forever.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
	err  *Error
}

// New returns a Lexer for src.
func New(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Err returns the first lexical error encountered, or nil.
func (l *Lexer) Err() error {
	if l.err == nil {
		return nil
	}
	return l.err
}

func (l *Lexer) pos() Pos { return Pos{Line: l.line, Col: l.col, Offset: l.off} }

func (l *Lexer) errorf(p Pos, format string, args ...any) {
	if l.err == nil {
		l.err = &Error{Pos: p, Msg: fmt.Sprintf(format, args...)}
	}
}

// peek returns the current rune without consuming it, or -1 at EOF.
func (l *Lexer) peek() rune {
	if l.off >= len(l.src) {
		return -1
	}
	r, _ := utf8.DecodeRuneInString(l.src[l.off:])
	return r
}

func (l *Lexer) peekAt(n int) byte {
	if l.off+n >= len(l.src) {
		return 0
	}
	return l.src[l.off+n]
}

func (l *Lexer) advance() rune {
	if l.off >= len(l.src) {
		return -1
	}
	r, w := utf8.DecodeRuneInString(l.src[l.off:])
	l.off += w
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

func (l *Lexer) skipSpaceAndComments() {
	for {
		r := l.peek()
		switch {
		case r == ' ' || r == '\t' || r == '\r' || r == '\n':
			l.advance()
		case r == '/' && l.peekAt(1) == '/':
			for l.peek() != '\n' && l.peek() != -1 {
				l.advance()
			}
		case r == '/' && l.peekAt(1) == '*':
			start := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.peek() != -1 {
				if l.peek() == '*' && l.peekAt(1) == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				l.errorf(start, "unterminated block comment")
				return
			}
		default:
			return
		}
	}
}

func isIdentStart(r rune) bool {
	return r == '_' || r == '$' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return isIdentStart(r) || unicode.IsDigit(r)
}

// Next scans and returns the next token.
func (l *Lexer) Next() Token {
	l.skipSpaceAndComments()
	p := l.pos()
	r := l.peek()
	switch {
	case r == -1:
		return Token{Kind: EOF, Pos: p}
	case isIdentStart(r):
		return l.scanIdent(p)
	case (r >= '0' && r <= '9') || (r == '.' && isDigit(l.peekAt(1))):
		// Only ASCII digits start numeric literals; non-ASCII digits fall
		// through to scanPunct, which reports them as unexpected.
		return l.scanNumber(p)
	case r == '"' || r == '\'':
		return l.scanString(p)
	default:
		return l.scanPunct(p)
	}
}

// All scans the entire input and returns every token up to and including the
// final EOF. It is a convenience for tests and the parser.
func (l *Lexer) All() []Token {
	var toks []Token
	for {
		t := l.Next()
		toks = append(toks, t)
		if t.Kind == EOF {
			return toks
		}
	}
}

func isDigit(b byte) bool { return '0' <= b && b <= '9' }

func (l *Lexer) scanIdent(p Pos) Token {
	start := l.off
	for isIdentPart(l.peek()) {
		l.advance()
	}
	lit := l.src[start:l.off]
	k := Ident
	if keywords[lit] {
		k = Keyword
	}
	return Token{Kind: k, Lit: lit, Pos: p}
}

func (l *Lexer) scanNumber(p Pos) Token {
	start := l.off
	if l.peek() == '0' && (l.peekAt(1) == 'x' || l.peekAt(1) == 'X') {
		l.advance()
		l.advance()
		for isHexDigit(l.peekAt(0)) {
			l.advance()
		}
		lit := l.src[start:l.off]
		n, err := strconv.ParseUint(lit[2:], 16, 64)
		if err != nil {
			l.errorf(p, "invalid hex literal %q", lit)
		}
		return Token{Kind: Number, Lit: lit, Num: float64(n), Pos: p}
	}
	for isDigit(l.peekAt(0)) {
		l.advance()
	}
	if l.peek() == '.' && isDigit(l.peekAt(1)) {
		l.advance()
		for isDigit(l.peekAt(0)) {
			l.advance()
		}
	} else if l.peek() == '.' && !isIdentStart(rune(l.peekAt(1))) && l.peekAt(1) != '.' {
		// Trailing-dot literal like "1." — consume the dot unless it starts
		// a property access (e.g. 1..toString is not supported; 1.x is 1 . x).
		l.advance()
	}
	if e := l.peek(); e == 'e' || e == 'E' {
		save := l.off
		l.advance()
		if s := l.peek(); s == '+' || s == '-' {
			l.advance()
		}
		if !isDigit(l.peekAt(0)) {
			// Not an exponent after all (e.g. "3e" followed by ident char);
			// back out by resetting offset. Column tracking is approximate
			// here, which is acceptable for error positions.
			l.off = save
		} else {
			for isDigit(l.peekAt(0)) {
				l.advance()
			}
		}
	}
	lit := l.src[start:l.off]
	n, err := strconv.ParseFloat(strings.TrimSuffix(lit, "."), 64)
	if err != nil {
		l.errorf(p, "invalid number literal %q", lit)
	}
	return Token{Kind: Number, Lit: lit, Num: n, Pos: p}
}

func isHexDigit(b byte) bool {
	return isDigit(b) || ('a' <= b && b <= 'f') || ('A' <= b && b <= 'F')
}

func (l *Lexer) scanString(p Pos) Token {
	quote := l.advance()
	var b strings.Builder
	start := l.off
	for {
		r := l.peek()
		switch r {
		case -1, '\n':
			l.errorf(p, "unterminated string literal")
			return Token{Kind: String, Lit: l.src[start:l.off], Str: b.String(), Pos: p}
		case quote:
			lit := l.src[start:l.off]
			l.advance()
			return Token{Kind: String, Lit: lit, Str: b.String(), Pos: p}
		case '\\':
			l.advance()
			esc := l.advance()
			switch esc {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case 'b':
				b.WriteByte('\b')
			case 'f':
				b.WriteByte('\f')
			case 'v':
				b.WriteByte('\v')
			case '0':
				b.WriteByte(0)
			case 'x':
				h1, h2 := l.advance(), l.advance()
				v, err := strconv.ParseUint(string([]rune{h1, h2}), 16, 8)
				if err != nil {
					l.errorf(p, "invalid \\x escape")
				}
				b.WriteByte(byte(v))
			case 'u':
				var hex [4]rune
				for i := range hex {
					hex[i] = l.advance()
				}
				v, err := strconv.ParseUint(string(hex[:]), 16, 32)
				if err != nil {
					l.errorf(p, "invalid \\u escape")
				}
				b.WriteRune(rune(v))
			case '\n':
				// line continuation: contributes nothing
			case -1:
				l.errorf(p, "unterminated string literal")
				return Token{Kind: String, Str: b.String(), Pos: p}
			default:
				b.WriteRune(esc)
			}
		default:
			b.WriteRune(l.advance())
		}
	}
}

// puncts lists multi-character punctuators longest-first so that maximal
// munch applies.
var puncts = []string{
	">>>=", "===", "!==", ">>>", "<<=", ">>=",
	"==", "!=", "<=", ">=", "&&", "||", "++", "--",
	"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<", ">>",
	"{", "}", "(", ")", "[", "]", ";", ",", "<", ">", "+", "-", "*", "/",
	"%", "&", "|", "^", "!", "~", "?", ":", "=", ".",
}

func (l *Lexer) scanPunct(p Pos) Token {
	rest := l.src[l.off:]
	for _, op := range puncts {
		if strings.HasPrefix(rest, op) {
			for range op {
				l.advance()
			}
			return Token{Kind: Punct, Lit: op, Pos: p}
		}
	}
	r := l.advance()
	l.errorf(p, "unexpected character %q", r)
	return Token{Kind: Punct, Lit: string(r), Pos: p}
}
