package lexer_test

import (
	"math"
	"strconv"
	"testing"
	"testing/quick"

	"determinacy/internal/lexer"
)

func lex(t *testing.T, src string) []lexer.Token {
	t.Helper()
	l := lexer.New(src)
	toks := l.All()
	if err := l.Err(); err != nil {
		t.Fatalf("lex %q: %v", src, err)
	}
	return toks[:len(toks)-1] // drop EOF
}

func TestBasicTokens(t *testing.T) {
	toks := lex(t, `var x = 42; // comment
		x += "hi\n";`)
	var lits []string
	for _, tok := range toks {
		lits = append(lits, tok.String())
	}
	want := []string{"var", "x", "=", "42", ";", "x", "+=", `"hi\n"`, ";"}
	if len(lits) != len(want) {
		t.Fatalf("got %v, want %v", lits, want)
	}
	for i := range want {
		if lits[i] != want[i] {
			t.Errorf("token %d: got %q want %q", i, lits[i], want[i])
		}
	}
}

func TestNumbers(t *testing.T) {
	cases := map[string]float64{
		"0":      0,
		"42":     42,
		"3.14":   3.14,
		"1e3":    1000,
		"2.5e-2": 0.025,
		"0x1f":   31,
		"0XFF":   255,
		".5":     0.5,
	}
	for src, want := range cases {
		toks := lex(t, src)
		if len(toks) != 1 || toks[0].Kind != lexer.Number {
			t.Errorf("%q: got %v", src, toks)
			continue
		}
		if toks[0].Num != want {
			t.Errorf("%q: got %v, want %v", src, toks[0].Num, want)
		}
	}
}

func TestStringEscapes(t *testing.T) {
	cases := map[string]string{
		`"a\tb"`:      "a\tb",
		`'single'`:    "single",
		`"q\"uote"`:   `q"uote`,
		`"A"`:         "A",
		`"\x41"`:      "A",
		`"back\\s"`:   `back\s`,
		`"new\nline"`: "new\nline",
	}
	for src, want := range cases {
		toks := lex(t, src)
		if len(toks) != 1 || toks[0].Kind != lexer.String {
			t.Errorf("%q: got %v", src, toks)
			continue
		}
		if toks[0].Str != want {
			t.Errorf("%q: got %q, want %q", src, toks[0].Str, want)
		}
	}
}

func TestMaximalMunch(t *testing.T) {
	toks := lex(t, "a===b!==c>>>=d<<=e")
	var ops []string
	for _, tok := range toks {
		if tok.Kind == lexer.Punct {
			ops = append(ops, tok.Lit)
		}
	}
	want := []string{"===", "!==", ">>>=", "<<="}
	for i := range want {
		if i >= len(ops) || ops[i] != want[i] {
			t.Fatalf("ops = %v, want %v", ops, want)
		}
	}
}

func TestKeywordsVsIdents(t *testing.T) {
	toks := lex(t, "if iffy typeof typeofx in instanceof")
	wantKinds := []lexer.Kind{lexer.Keyword, lexer.Ident, lexer.Keyword, lexer.Ident, lexer.Keyword, lexer.Keyword}
	for i, k := range wantKinds {
		if toks[i].Kind != k {
			t.Errorf("token %d (%s): kind %v, want %v", i, toks[i], toks[i].Kind, k)
		}
	}
}

func TestComments(t *testing.T) {
	toks := lex(t, "a /* block \n comment */ b // line\nc")
	if len(toks) != 3 {
		t.Fatalf("got %d tokens, want 3: %v", len(toks), toks)
	}
}

func TestPositions(t *testing.T) {
	l := lexer.New("a\n  b")
	a := l.Next()
	b := l.Next()
	if a.Pos.Line != 1 || a.Pos.Col != 1 {
		t.Errorf("a at %v, want 1:1", a.Pos)
	}
	if b.Pos.Line != 2 || b.Pos.Col != 3 {
		t.Errorf("b at %v, want 2:3", b.Pos)
	}
}

func TestErrors(t *testing.T) {
	for _, src := range []string{`"unterminated`, "/* unterminated", "@", "1 § 2"} {
		l := lexer.New(src)
		l.All()
		if l.Err() == nil {
			t.Errorf("%q: expected a lexical error", src)
		}
	}
}

// TestLexerNeverPanics feeds arbitrary strings to the lexer; it must
// terminate with tokens or an error, never panic or loop.
func TestLexerNeverPanics(t *testing.T) {
	f := func(src string) bool {
		l := lexer.New(src)
		toks := l.All()
		return len(toks) >= 1 // at least EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestNumberRoundTrip checks that finite positive numbers survive a
// format/lex round trip.
func TestNumberRoundTrip(t *testing.T) {
	f := func(n uint32, frac uint16) bool {
		v := float64(n) + float64(frac)/65536
		if math.IsInf(v, 0) || math.IsNaN(v) {
			return true
		}
		src := trimFloat(v)
		l := lexer.New(src)
		tok := l.Next()
		if l.Err() != nil || tok.Kind != lexer.Number {
			return false
		}
		return math.Abs(tok.Num-v) < 1e-9*(1+math.Abs(v))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func trimFloat(v float64) string {
	return strconv.FormatFloat(v, 'f', -1, 64)
}
