package factcache

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"

	"determinacy/internal/ast"
	"determinacy/internal/core"
	"determinacy/internal/facts"
	"determinacy/internal/ir"
)

// Schema versions the logical cache content (key derivation, chunk and
// manifest shapes) independently of the storage framing: a Schema bump
// changes every key, so old entries become unreachable rather than
// misread.
const Schema = 1

// Recorder accumulates per-function entry observations during a cold run.
// Wire its OnEnter method into core.Options.OnEnterFunc; each activation
// contributes its packed input-determinacy signature (core.EntrySig) and
// the heap-flush epoch at entry. The fold — the AND of all activation
// signatures, the activation count, and the epoch span — becomes part of
// the function's chunk identity: a fact set is only ever reused for a
// function whose body AND whose observed entry determinacy match.
type Recorder struct {
	byFn map[int]*entryObs
}

type entryObs struct {
	sigAnd   uint64
	acts     int
	minEpoch uint64
	maxEpoch uint64
}

// NewRecorder creates an empty recorder.
func NewRecorder() *Recorder { return &Recorder{byFn: map[int]*entryObs{}} }

// OnEnter observes one function activation; it has the shape of
// core.Options.OnEnterFunc.
func (r *Recorder) OnEnter(fn *ir.Function, sig uint64, epoch uint64) {
	o, ok := r.byFn[fn.Index]
	if !ok {
		r.byFn[fn.Index] = &entryObs{sigAnd: sig, acts: 1, minEpoch: epoch, maxEpoch: epoch}
		return
	}
	o.sigAnd &= sig
	o.acts++
	if epoch < o.minEpoch {
		o.minEpoch = epoch
	}
	if epoch > o.maxEpoch {
		o.maxEpoch = epoch
	}
}

// BodyHash content-addresses a function's source text. Nested functions
// hash their printed declaration — the printer emits no positions, so the
// hash is stable under edits elsewhere in the file, which is what makes
// per-function diffing meaningful. The top level (and runtime-lowered eval
// code, which has no Decl) lexically contains the whole program, so it
// hashes the full source.
func BodyHash(mod *ir.Module, fn *ir.Function) string {
	if fn.Decl != nil {
		return hashString("fn\x00" + ast.PrintExpr(fn.Decl))
	}
	return hashString("top\x00" + mod.Source)
}

func hashString(s string) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:])
}

// wireFact mirrors the facts package's JSON wire form (one fact with its
// context, join state and hit count); wireSnap carries the value snapshot
// with non-finite numbers smuggled through NumS, exactly as
// internal/facts/encode.go does.
type wireFact struct {
	Instr int      `json:"instr"`
	Ctx   [][2]int `json:"ctx,omitempty"`
	Seq   int      `json:"seq,omitempty"`
	Det   bool     `json:"det"`
	Val   wireSnap `json:"val"`
	Hits  int      `json:"hits,omitempty"`
}

type wireSnap struct {
	Kind    int     `json:"kind"`
	Bool    bool    `json:"bool,omitempty"`
	Num     float64 `json:"num,omitempty"`
	NumS    string  `json:"nums,omitempty"`
	Str     string  `json:"str,omitempty"`
	Alloc   int     `json:"alloc,omitempty"`
	FnIndex int     `json:"fn,omitempty"`
	Native  string  `json:"native,omitempty"`
}

func encodeNum(n float64) (float64, string) {
	switch {
	case math.IsNaN(n):
		return 0, "NaN"
	case math.IsInf(n, 1):
		return 0, "+Inf"
	case math.IsInf(n, -1):
		return 0, "-Inf"
	case n == 0 && math.Signbit(n):
		return 0, "-0"
	}
	return n, ""
}

func decodeNum(n float64, s string) float64 {
	switch s {
	case "NaN":
		return math.NaN()
	case "+Inf":
		return math.Inf(1)
	case "-Inf":
		return math.Inf(-1)
	case "-0":
		return math.Copysign(0, -1)
	}
	return n
}

func toWire(f *facts.Fact) wireFact {
	num, numS := encodeNum(f.Val.Num)
	wf := wireFact{
		Instr: int(f.Instr), Seq: f.Seq, Det: f.Det, Hits: f.Hits,
		Val: wireSnap{
			Kind: int(f.Val.Kind), Bool: f.Val.Bool, Num: num, NumS: numS,
			Str: f.Val.Str, Alloc: f.Val.Alloc, FnIndex: f.Val.FnIndex,
			Native: f.Val.Native,
		},
	}
	for _, e := range f.Ctx {
		wf.Ctx = append(wf.Ctx, [2]int{int(e.Site), e.Seq})
	}
	return wf
}

// chunkPayload is one function's share of a run: its identity (body hash +
// folded entry determinacy + epoch span) and its facts in recording order.
type chunkPayload struct {
	Schema   int        `json:"schema"`
	Fn       int        `json:"fn"`
	BodyHash string     `json:"body"`
	SigAnd   uint64     `json:"sig"`
	Acts     int        `json:"acts"`
	EpochMin uint64     `json:"emin"`
	EpochMax uint64     `json:"emax"`
	Facts    []wireFact `json:"facts"`
}

// manifest stitches a run back together: which chunks participate, the
// global recording-order interleaving across them, and the run outputs
// that must replay byte-identically (console bytes, statistics, handler
// count).
type manifest struct {
	Schema      int      `json:"schema"`
	File        string   `json:"file"`
	SourceHash  string   `json:"src"`
	Chunks      []string `json:"chunks"`
	ChunkFns    []int    `json:"chunk_fns"`
	ChunkBodies []string `json:"chunk_bodies"`
	// Order holds, for each recorded fact in global recording order, the
	// index of the chunk it came from; within one chunk facts already sit
	// in recording order, so per-chunk cursors reconstruct the exact
	// interleaving.
	Order       []int      `json:"order,omitempty"`
	Output      []byte     `json:"output,omitempty"`
	Stats       core.Stats `json:"stats"`
	HandlersRan int        `json:"handlers,omitempty"`
	MaxSeq      int        `json:"maxseq"`
}

// splitChunks groups a completed run's facts by enclosing function,
// preserving recording order within each chunk and returning the global
// interleaving. A fact that maps to no function (impossible for eval-free
// runs, which are the only cacheable ones) fails the split.
func splitChunks(mod *ir.Module, store *facts.Store, rec *Recorder) (chunks []*chunkPayload, order []int, err error) {
	chunkOf := map[int]int{} // function index -> chunk index
	for _, f := range store.All() {
		fn := mod.FuncOf(f.Instr)
		if fn == nil {
			return nil, nil, fmt.Errorf("factcache: fact at instr %d maps to no function", f.Instr)
		}
		ci, ok := chunkOf[fn.Index]
		if !ok {
			ci = len(chunks)
			chunkOf[fn.Index] = ci
			c := &chunkPayload{Schema: Schema, Fn: fn.Index, BodyHash: BodyHash(mod, fn)}
			if rec != nil {
				if o, ok := rec.byFn[fn.Index]; ok {
					c.SigAnd, c.Acts = o.sigAnd, o.acts
					c.EpochMin, c.EpochMax = o.minEpoch, o.maxEpoch
				}
			}
			chunks = append(chunks, c)
		}
		chunks[ci].Facts = append(chunks[ci].Facts, toWire(f))
		order = append(order, ci)
	}
	return chunks, order, nil
}

// stitch rebuilds a fact store from a manifest's chunks by replaying every
// fact through Store.Record in the original global recording order — the
// same mechanism facts.Decode and Store.Restrict use — so the result is
// indistinguishable from the store the cold run produced: same join
// states, same recording order, same hit counts. Structural inconsistency
// (cursor over/underrun, out-of-range chunk index) reports an error; the
// caller treats it as corruption.
func stitch(m *manifest, chunks []*chunkPayload) (*facts.Store, error) {
	s := facts.NewStore()
	if m.MaxSeq > 0 {
		s.MaxSeq = m.MaxSeq
	}
	cursors := make([]int, len(chunks))
	for _, ci := range m.Order {
		if ci < 0 || ci >= len(chunks) {
			return nil, fmt.Errorf("factcache: stitch: chunk index %d out of range", ci)
		}
		c := chunks[ci]
		k := cursors[ci]
		if k >= len(c.Facts) {
			return nil, fmt.Errorf("factcache: stitch: chunk %d exhausted", ci)
		}
		cursors[ci]++
		wf := c.Facts[k]
		var ctx facts.Context
		for _, e := range wf.Ctx {
			ctx = append(ctx, facts.ContextEntry{Site: ir.ID(e[0]), Seq: e[1]})
		}
		val := facts.Snapshot{
			Kind: facts.ValueKind(wf.Val.Kind), Bool: wf.Val.Bool,
			Num: decodeNum(wf.Val.Num, wf.Val.NumS),
			Str: wf.Val.Str, Alloc: wf.Val.Alloc, FnIndex: wf.Val.FnIndex,
			Native: wf.Val.Native,
		}
		s.Record(ir.ID(wf.Instr), ctx, wf.Seq, wf.Det, val)
		if wf.Hits > 1 {
			if f, ok := s.Lookup(ir.ID(wf.Instr), ctx, wf.Seq); ok {
				f.Hits = wf.Hits
			}
		}
	}
	for i, c := range chunks {
		if cursors[i] != len(c.Facts) {
			return nil, fmt.Errorf("factcache: stitch: chunk %d has %d unconsumed facts", i, len(c.Facts)-cursors[i])
		}
	}
	return s, nil
}
