// Package factcache memoizes determinacy analysis results at function
// granularity in an on-disk, content-addressed fact database — the L2
// layer under the front-end compile cache (internal/batch/progcache, L1).
//
// A completed run is split into per-function fact chunks, each keyed by
// the content hash of the function's body plus the folded determinacy
// signature of its inputs at entry (core.EntrySig) and the heap-flush
// epoch span it was observed over — heap flushes are the analysis' sound
// join points (§4 of the paper), so they are the boundaries at which
// cached facts can be stitched back into a live result. A manifest ties
// the chunks of one (program, options) pair together with the global
// recording-order interleaving, the console output, and the run
// statistics; serving a warm hit replays the chunks through the ordinary
// Store.Record path and is therefore byte-identical to re-running the
// analysis — the property internal/diffcheck's memoization oracle checks.
//
// On a re-submission whose source changed, the full key misses but a
// per-(program, options) head still names the previous manifest; Diff
// compares per-function body hashes against it so the incremental cost is
// visible (factcache_fn_{unchanged,changed}_total), and unchanged
// functions' chunks deduplicate in the object store when the new run is
// recorded.
//
// Eligibility is decided by callers (only they see partiality): partial,
// degraded, errored, or eval-containing runs must NEVER populate the
// cache — a cached entry asserts "this is exactly what a fresh run
// produces", which a truncated run cannot. The engine is deliberately
// absent from the key: both execution engines are byte-identical by
// contract, so warm hits serve across engines.
package factcache

import (
	"container/list"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"determinacy/internal/core"
	"determinacy/internal/facts"
	"determinacy/internal/ir"
	"determinacy/internal/obs"
)

// DefaultMemEntries bounds the in-memory LRU of decoded manifests; disk
// entries are unbounded (content-addressed objects dedup naturally).
const DefaultMemEntries = 64

// MaxOutputBytes caps the console output a cached run may carry; runs
// printing more are not cached (skip reason "output-cap").
const MaxOutputBytes = 1 << 20

// Sig is the canonical signature of every analysis option that shapes
// facts, statistics or output. Sinks (Out, Tracer, Metrics), scheduling
// (Workers, Deadline, Ctx) and the Engine (byte-identical by contract) are
// deliberately absent.
type Sig struct {
	Seed                  uint64     `json:"seed"`
	NowBits               uint64     `json:"now"`
	Inputs                []InputSig `json:"inputs,omitempty"`
	WithDOM               bool       `json:"dom,omitempty"`
	DetDOM                bool       `json:"detdom,omitempty"`
	RunHandlers           int        `json:"handlers,omitempty"`
	MaxCFDepth            int        `json:"cfdepth,omitempty"`
	MaxFlushes            int        `json:"flushes,omitempty"`
	MaxSteps              int        `json:"steps,omitempty"`
	DisableCounterfactual bool       `json:"nocf,omitempty"`
	ImmediateTaint        bool       `json:"taint,omitempty"`
	MuJSLocals            bool       `json:"mujs,omitempty"`
}

// InputSig is one __input binding in canonical form.
type InputSig struct {
	Name    string `json:"name"`
	Kind    int    `json:"kind"`
	NumBits uint64 `json:"num,omitempty"`
	Str     string `json:"str,omitempty"`
	Bool    bool   `json:"bool,omitempty"`
}

// NumSigBits canonicalizes a float for signature purposes (NaN bit
// patterns collapse to one).
func NumSigBits(f float64) uint64 {
	if math.IsNaN(f) {
		return math.Float64bits(math.NaN())
	}
	return math.Float64bits(f)
}

// canon serializes the signature deterministically (inputs sorted by
// name).
func (s Sig) canon() []byte {
	sort.Slice(s.Inputs, func(i, j int) bool { return s.Inputs[i].Name < s.Inputs[j].Name })
	b, err := json.Marshal(s)
	if err != nil {
		// Sig is a closed struct of scalars; Marshal cannot fail.
		panic(err)
	}
	return b
}

// Key addresses one (program, options) pair in the cache.
type Key struct {
	id    string // full address: schema + file + source hash + options
	head  string // diff anchor: same minus the source hash
	route string // bare source hash: the cluster's content-routing key
}

// KeyFor derives the cache key for a program and its options signature.
func KeyFor(file, source string, sig Sig) Key {
	sb := string(sig.canon())
	sh := hashString(source)
	return Key{
		id:    hashString(fmt.Sprintf("key\x00%d\x00%s\x00%s\x00%s", Schema, file, sh, sb)),
		head:  hashString(fmt.Sprintf("head\x00%d\x00%s\x00%s", Schema, file, sb)),
		route: sh,
	}
}

// ID reports the full cache address (diagnostics, tests).
func (k Key) ID() string { return k.id }

// RouteKey reports the bare source hash — the key a sharded cluster
// routes analysis on, so a remote lookup lands on the node whose disk
// holds the facts.
func (k Key) RouteKey() string { return k.route }

// Zero reports whether the key is the zero value (no cache in play).
func (k Key) Zero() bool { return k.id == "" }

// Hit is a warm result: everything a cold run would have produced.
type Hit struct {
	// Store is a freshly stitched fact store; the caller owns it.
	Store *facts.Store
	// Output is the run's console bytes.
	Output []byte
	// Stats are the cold run's statistics.
	Stats core.Stats
	// HandlersRan counts the DOM handlers the cold run drove.
	HandlersRan int
	// Chunks is the number of function chunks stitched into Store.
	Chunks int
}

// DiffReport summarizes a per-function IR diff against the previous cached
// manifest for the same (program, options) anchor.
type DiffReport struct {
	Total     int // functions in the current lowering
	Unchanged int // body hash present in the previous manifest
	Changed   int // new or modified bodies that need re-analysis
}

// CacheStats is a point-in-time snapshot of cache activity, for tests and
// diagnostics; the live series go to the attached metrics registry.
type CacheStats struct {
	Hits, Misses, Stores, Joins  int64
	Invalidations, Skips         int64
	ChunksWritten, ChunksDeduped int64
	FnUnchanged, FnChanged       int64
	RemoteHits, RemoteInvalid    int64
}

// Cache is the fact cache: an on-disk DB plus a small in-memory LRU of
// decoded entries. Safe for concurrent use.
type Cache struct {
	db *DB

	mu     sync.Mutex
	mem    map[string]*memEntry
	lru    *list.List // front = most recently used; values are *memEntry
	maxMem int

	remote  Remote // optional L3 tier consulted on local miss
	metrics *obs.Metrics
	stats   CacheStats
}

type memEntry struct {
	key    string
	elem   *list.Element
	man    *manifest
	chunks []*chunkPayload
}

// Open creates or opens a fact cache rooted at dir.
func Open(dir string) (*Cache, error) {
	db, err := OpenDB(dir)
	if err != nil {
		return nil, err
	}
	return &Cache{
		db:     db,
		mem:    map[string]*memEntry{},
		lru:    list.New(),
		maxMem: DefaultMemEntries,
	}, nil
}

// WithMetrics attaches a metrics registry; the cache then maintains
// factcache_* series live. Returns the cache for chaining.
func (c *Cache) WithMetrics(m *obs.Metrics) *Cache {
	c.mu.Lock()
	c.metrics = m
	c.mu.Unlock()
	return c
}

// Dir reports the cache's database root.
func (c *Cache) Dir() string { return c.db.Dir() }

// Stats snapshots cumulative cache activity.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// count bumps a local stat and the matching metrics series under c.mu.
func (c *Cache) countLocked(stat *int64, name string) {
	*stat++
	if c.metrics != nil {
		c.metrics.Counter(name).Inc()
	}
}

// Skip records that a run was deliberately not cached and why ("partial",
// "error", "eval", "output-cap", "unmapped"). The eligibility decision
// lives with callers; the taxonomy lives here so every layer shares one
// series.
func (c *Cache) Skip(reason string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.countLocked(&c.stats.Skips, fmt.Sprintf("factcache_skips_total{reason=%q}", reason))
}

// invalidate drops a broken entry: the head pointer is removed so the next
// lookup is a clean miss, and the reason is published.
func (c *Cache) invalidate(key Key, reason string, objectID string) {
	c.db.RemoveHead(key.id)
	if objectID != "" {
		c.db.RemoveObject(objectID)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.mem, key.id)
	c.countLocked(&c.stats.Invalidations, fmt.Sprintf("factcache_invalidations_total{reason=%q}", reason))
}

// reasonFor classifies a read error for the invalidation series.
func reasonFor(err error) string {
	switch {
	case IsNotExist(err):
		return "missing"
	case errors.Is(err, ErrVersion):
		return "version"
	default:
		return "corrupt"
	}
}

// Lookup serves a warm result for key, stitching a fresh fact store from
// the cached chunks. ok is false on a miss; any invalid on-disk state
// (truncation, bit flips, version skew, structural inconsistency) is
// invalidated and reported as a miss — never an error, never a wrong
// result.
func (c *Cache) Lookup(key Key) (*Hit, bool) {
	if key.Zero() {
		return nil, false
	}
	man, chunks, ok := c.load(key)
	if !ok && c.loadRemote(key) {
		// The owning peer had the records and they validated end to end;
		// they are local objects now, so reload from disk.
		man, chunks, ok = c.load(key)
	}
	if !ok {
		c.mu.Lock()
		c.countLocked(&c.stats.Misses, "factcache_misses_total")
		c.mu.Unlock()
		return nil, false
	}
	store, err := stitch(man, chunks)
	if err != nil {
		c.invalidate(key, "stitch", "")
		c.mu.Lock()
		c.countLocked(&c.stats.Misses, "factcache_misses_total")
		c.mu.Unlock()
		return nil, false
	}
	c.mu.Lock()
	c.countLocked(&c.stats.Hits, "factcache_hits_total")
	c.stats.Joins += int64(len(chunks))
	if c.metrics != nil {
		c.metrics.Counter("factcache_joins_total").Add(int64(len(chunks)))
	}
	c.mu.Unlock()
	out := make([]byte, len(man.Output))
	copy(out, man.Output)
	return &Hit{
		Store:       store,
		Output:      out,
		Stats:       man.Stats,
		HandlersRan: man.HandlersRan,
		Chunks:      len(chunks),
	}, true
}

// load fetches the decoded manifest + chunks for key, from the memory LRU
// or disk. Absence is a quiet miss; invalid state invalidates first.
func (c *Cache) load(key Key) (*manifest, []*chunkPayload, bool) {
	c.mu.Lock()
	if e, ok := c.mem[key.id]; ok {
		c.lru.MoveToFront(e.elem)
		man, chunks := e.man, e.chunks
		c.mu.Unlock()
		return man, chunks, true
	}
	c.mu.Unlock()

	mid, err := c.db.Head(key.id)
	if err != nil {
		if !IsNotExist(err) {
			c.invalidate(key, reasonFor(err), "")
		}
		return nil, nil, false
	}
	mb, err := c.db.GetObject(mid, KindManifest)
	if err != nil {
		c.invalidate(key, reasonFor(err), mid)
		return nil, nil, false
	}
	man := &manifest{}
	if err := json.Unmarshal(mb, man); err != nil || man.Schema != Schema {
		c.invalidate(key, "schema", mid)
		return nil, nil, false
	}
	if len(man.ChunkFns) != len(man.Chunks) || len(man.ChunkBodies) != len(man.Chunks) {
		c.invalidate(key, "schema", mid)
		return nil, nil, false
	}
	chunks := make([]*chunkPayload, len(man.Chunks))
	for i, cid := range man.Chunks {
		cb, err := c.db.GetObject(cid, KindChunk)
		if err != nil {
			c.invalidate(key, reasonFor(err), cid)
			return nil, nil, false
		}
		ch := &chunkPayload{}
		if err := json.Unmarshal(cb, ch); err != nil || ch.Schema != Schema {
			c.invalidate(key, "schema", cid)
			return nil, nil, false
		}
		chunks[i] = ch
	}
	c.remember(key, man, chunks)
	return man, chunks, true
}

// remember inserts a decoded entry into the memory LRU.
func (c *Cache) remember(key Key, man *manifest, chunks []*chunkPayload) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.mem[key.id]; ok {
		e.man, e.chunks = man, chunks
		c.lru.MoveToFront(e.elem)
		return
	}
	e := &memEntry{key: key.id, man: man, chunks: chunks}
	e.elem = c.lru.PushFront(e)
	c.mem[key.id] = e
	for len(c.mem) > c.maxMem {
		back := c.lru.Back()
		be := back.Value.(*memEntry)
		c.lru.Remove(back)
		delete(c.mem, be.key)
	}
	if c.metrics != nil {
		c.metrics.Gauge("factcache_mem_entries").Set(float64(len(c.mem)))
	}
}

// Store persists a COMPLETED run — the caller vouches that it ran to the
// end (not partial, not degraded, no runtime eval) and that store/output/
// stats are exactly what any fresh run with the same key produces.
func (c *Cache) Store(key Key, mod *ir.Module, store *facts.Store, rec *Recorder, output []byte, stats core.Stats, handlersRan int) error {
	if key.Zero() {
		return nil
	}
	if len(output) > MaxOutputBytes {
		c.Skip("output-cap")
		return nil
	}
	chunks, order, err := splitChunks(mod, store, rec)
	if err != nil {
		c.Skip("unmapped")
		return nil
	}
	man := &manifest{
		Schema:      Schema,
		File:        mod.File,
		SourceHash:  hashString(mod.Source),
		Order:       order,
		Output:      output,
		Stats:       stats,
		HandlersRan: handlersRan,
		MaxSeq:      store.MaxSeq,
	}
	var written, deduped int64
	for _, ch := range chunks {
		cb, err := json.Marshal(ch)
		if err != nil {
			return fmt.Errorf("factcache: encode chunk: %w", err)
		}
		cid, created, err := c.db.PutObject(KindChunk, cb)
		if err != nil {
			return err
		}
		if created {
			written++
		} else {
			deduped++
		}
		man.Chunks = append(man.Chunks, cid)
		man.ChunkFns = append(man.ChunkFns, ch.Fn)
		man.ChunkBodies = append(man.ChunkBodies, ch.BodyHash)
	}
	mb, err := json.Marshal(man)
	if err != nil {
		return fmt.Errorf("factcache: encode manifest: %w", err)
	}
	mid, _, err := c.db.PutObject(KindManifest, mb)
	if err != nil {
		return err
	}
	if err := c.db.SetHead(key.id, mid); err != nil {
		return err
	}
	if err := c.db.SetHead(key.head, mid); err != nil {
		return err
	}
	c.remember(key, man, chunks)
	c.mu.Lock()
	c.countLocked(&c.stats.Stores, "factcache_stores_total")
	c.stats.ChunksWritten += written
	c.stats.ChunksDeduped += deduped
	if c.metrics != nil {
		c.metrics.Counter("factcache_chunks_written_total").Add(written)
		c.metrics.Counter("factcache_chunks_deduped_total").Add(deduped)
	}
	c.mu.Unlock()
	return nil
}

// Diff compares the current lowering's per-function body hashes against
// the most recent cached manifest for the same (program, options) anchor —
// the incremental-resubmission report: after an edit the full key misses,
// but the anchor still says which functions actually changed and thus how
// much of the re-analysis the chunk store will absorb. ok is false when no
// previous manifest exists (first sight of this program).
func (c *Cache) Diff(key Key, mod *ir.Module) (DiffReport, bool) {
	if key.Zero() {
		return DiffReport{}, false
	}
	mid, err := c.db.Head(key.head)
	if err != nil {
		if !IsNotExist(err) {
			c.db.RemoveHead(key.head)
		}
		return DiffReport{}, false
	}
	mb, err := c.db.GetObject(mid, KindManifest)
	if err != nil {
		c.db.RemoveHead(key.head)
		return DiffReport{}, false
	}
	man := &manifest{}
	if err := json.Unmarshal(mb, man); err != nil || man.Schema != Schema {
		c.db.RemoveHead(key.head)
		return DiffReport{}, false
	}
	prev := make(map[string]bool, len(man.ChunkBodies))
	for _, h := range man.ChunkBodies {
		prev[h] = true
	}
	var rep DiffReport
	for _, fn := range mod.Funcs {
		rep.Total++
		if prev[BodyHash(mod, fn)] {
			rep.Unchanged++
		} else {
			rep.Changed++
		}
	}
	c.mu.Lock()
	c.stats.FnUnchanged += int64(rep.Unchanged)
	c.stats.FnChanged += int64(rep.Changed)
	if c.metrics != nil {
		c.metrics.Counter("factcache_fn_unchanged_total").Add(int64(rep.Unchanged))
		c.metrics.Counter("factcache_fn_changed_total").Add(int64(rep.Changed))
	}
	c.mu.Unlock()
	return rep, true
}
