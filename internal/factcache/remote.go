package factcache

import (
	"encoding/json"
	"errors"
	"fmt"
)

// Remote is a remote fact-record source — the L3 tier behind the local
// disk. On a local miss, Lookup consults it for the raw framed records of
// a key (manifest frame followed by its chunk frames, exactly the bytes
// ExportRecords serves on the owning node). Implementations return
// ok=false for any miss or failure; they are expected to be fallible and
// slow, never authoritative — every returned byte is re-validated here
// (framing, CRC, content address, schema, manifest/chunk consistency)
// before anything is imported, so a corrupt, truncated, bit-flipped, or
// version-skewed remote payload is discarded (counted by reason in
// factcache_remote_invalid_total) and the caller just analyzes locally.
//
// internal/cluster's Router implements Remote structurally (owner lookup
// on the ring + hedged HTTP fetch) and additionally collapses concurrent
// fetches for one key into a single round trip, so this layer does not
// singleflight again.
type Remote interface {
	// Fetch returns the framed records for keyID. routeKey is the bare
	// source hash the cluster shards analysis on — the implementation
	// routes the lookup with it (the node that analyzed a program, hence
	// holds its facts, is the owner of its source hash, not of the
	// composite key id).
	Fetch(keyID, routeKey string) ([]byte, bool)
}

// WithRemote attaches a remote record source consulted on local miss.
// Returns the cache for chaining.
func (c *Cache) WithRemote(r Remote) *Cache {
	c.mu.Lock()
	c.remote = r
	c.mu.Unlock()
	return c
}

// ExportRecords serves this cache's records for a full key id as one raw
// framed stream: the manifest frame then each chunk frame, bytes exactly
// as stored on disk (no re-framing — local damage travels as-is and fails
// the importer's validation, which is the property the chaos campaign
// leans on). ok is false when the key has no valid local entry.
func (c *Cache) ExportRecords(keyID string) ([]byte, bool) {
	if keyID == "" {
		return nil, false
	}
	mid, err := c.db.Head(keyID)
	if err != nil {
		return nil, false
	}
	// Parse the manifest (validated) to learn the chunk list, but serve
	// the raw frames.
	mb, err := c.db.GetObject(mid, KindManifest)
	if err != nil {
		return nil, false
	}
	man := &manifest{}
	if err := json.Unmarshal(mb, man); err != nil || man.Schema != Schema {
		return nil, false
	}
	raw, err := c.db.RawObject(mid)
	if err != nil {
		return nil, false
	}
	stream := append([]byte(nil), raw...)
	for _, cid := range man.Chunks {
		cb, err := c.db.RawObject(cid)
		if err != nil {
			return nil, false
		}
		stream = append(stream, cb...)
	}
	return stream, true
}

// countRemoteInvalid publishes one discarded remote payload by reason
// ("corrupt", "version", "schema", "mismatch", "empty").
func (c *Cache) countRemoteInvalid(reason string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.countLocked(&c.stats.RemoteInvalid, fmt.Sprintf("factcache_remote_invalid_total{reason=%q}", reason))
}

// remoteReason classifies an unframe error.
func remoteReason(err error) string {
	if errors.Is(err, ErrVersion) {
		return "version"
	}
	return "corrupt"
}

// loadRemote consults the remote tier for key and, when the returned
// stream validates end to end, imports it into the local DB (PutObject
// re-frames and content-addresses each record; SetHead anchors both the
// full key and the diff head). Returns true when the import succeeded and
// a local reload will now hit.
func (c *Cache) loadRemote(key Key) bool {
	c.mu.Lock()
	remote := c.remote
	c.mu.Unlock()
	if remote == nil {
		return false
	}
	data, ok := remote.Fetch(key.id, key.route)
	if !ok {
		return false
	}
	if len(data) == 0 {
		c.countRemoteInvalid("empty")
		return false
	}
	frames, err := SplitFrames(data)
	if err != nil || len(frames) == 0 {
		c.countRemoteInvalid("corrupt")
		return false
	}

	// Frame 0 is the manifest; validate framing, content address, schema,
	// and internal consistency before trusting its chunk list.
	mp, err := unframe(frames[0], KindManifest)
	if err != nil {
		c.countRemoteInvalid(remoteReason(err))
		return false
	}
	mid := ObjectID(mp)
	man := &manifest{}
	if err := json.Unmarshal(mp, man); err != nil || man.Schema != Schema {
		c.countRemoteInvalid("schema")
		return false
	}
	if len(man.ChunkFns) != len(man.Chunks) || len(man.ChunkBodies) != len(man.Chunks) {
		c.countRemoteInvalid("schema")
		return false
	}
	if len(frames)-1 != len(man.Chunks) {
		c.countRemoteInvalid("mismatch")
		return false
	}
	chunkPayloads := make([][]byte, len(man.Chunks))
	for i, cid := range man.Chunks {
		cp, err := unframe(frames[i+1], KindChunk)
		if err != nil {
			c.countRemoteInvalid(remoteReason(err))
			return false
		}
		// The chunk must be the exact object the manifest names — a frame
		// that validates but sits in the wrong position (or a peer
		// answering records for a different program) is discarded whole.
		if ObjectID(cp) != cid {
			c.countRemoteInvalid("mismatch")
			return false
		}
		chunkPayloads[i] = cp
	}

	// The stream is sound; import it. PutObject re-validates any existing
	// object under the same address, so this also self-repairs local
	// damage that caused the miss.
	for _, cp := range chunkPayloads {
		if _, _, err := c.db.PutObject(KindChunk, cp); err != nil {
			return false
		}
	}
	if _, _, err := c.db.PutObject(KindManifest, mp); err != nil {
		return false
	}
	if err := c.db.SetHead(key.id, mid); err != nil {
		return false
	}
	if err := c.db.SetHead(key.head, mid); err != nil {
		return false
	}
	c.mu.Lock()
	c.countLocked(&c.stats.RemoteHits, "factcache_remote_hits_total")
	c.mu.Unlock()
	return true
}
