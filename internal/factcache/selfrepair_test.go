package factcache

import (
	"os"
	"sync"
	"testing"
)

// TestConcurrentSelfRepair pins the repair contract under contention: two
// goroutines hit the same bit-flipped chunk at once, both degrade to a
// clean miss, both re-store the run concurrently — and the damaged object
// is rewritten exactly ONCE (the second store dedups against the repaired
// file), after which both observers read warm results byte-identical to
// the cold run. Run under -race, this also pins the Cache/DB locking.
func TestConcurrentSelfRepair(t *testing.T) {
	dir := t.TempDir()
	cold := runCold(t, testSrc, 7)
	key := KeyFor("cache.js", testSrc, Sig{Seed: 7})
	storeRun(t, mustOpen(t, dir), key, cold)
	wantRender := renderStore(cold.store)

	// Flip one payload bit in the first chunk object on disk (the frame
	// kind byte identifies chunks among manifests and heads).
	var chunkFiles int
	for _, path := range dbFiles(t, dir) {
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(b) <= headerSize || b[6] != KindChunk {
			continue
		}
		if chunkFiles == 0 {
			bad := append([]byte(nil), b...)
			bad[headerSize] ^= 0x01
			if err := os.WriteFile(path, bad, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		chunkFiles++
	}
	if chunkFiles == 0 {
		t.Fatal("no chunk object found on disk")
	}

	// One shared fresh handle: the empty memory LRU forces both goroutines
	// through the disk path where the damage lives.
	c := mustOpen(t, dir)

	// Phase 1: both goroutines look up concurrently. Each must see a
	// clean miss — one invalidates the damaged chunk, the other races it
	// into either a second invalidation or a missing-head miss.
	var phase sync.WaitGroup
	gate := make(chan struct{})
	var hits [2]bool
	for g := 0; g < 2; g++ {
		phase.Add(1)
		go func(g int) {
			defer phase.Done()
			<-gate
			_, hits[g] = c.Lookup(key)
		}(g)
	}
	close(gate)
	phase.Wait()
	if hits[0] || hits[1] {
		t.Fatalf("lookup hit on a corrupted chunk (hits=%v)", hits)
	}
	if st := c.Stats(); st.Invalidations == 0 {
		t.Fatalf("stats = %+v: no invalidation recorded for the damaged chunk", st)
	}

	// Phase 2: both re-analyze (precomputed — the runs are deterministic)
	// and store concurrently, as two request handlers would after the
	// shared miss.
	reruns := [2]*coldRun{runCold(t, testSrc, 7), runCold(t, testSrc, 7)}
	written0 := c.Stats().ChunksWritten
	gate = make(chan struct{})
	for g := 0; g < 2; g++ {
		phase.Add(1)
		go func(g int) {
			defer phase.Done()
			<-gate
			r := reruns[g]
			if err := c.Store(key, r.mod, r.store, r.rec, r.output, r.stats, 0); err != nil {
				t.Errorf("goroutine %d: store: %v", g, err)
			}
		}(g)
	}
	close(gate)
	phase.Wait()
	// Exactly one repair: only the invalidated chunk is rewritten; every
	// other object — and the second store's copy of the repaired one —
	// dedups against the valid file already at its content address.
	if got := c.Stats().ChunksWritten - written0; got != 1 {
		t.Fatalf("chunks written during concurrent repair = %d, want exactly 1", got)
	}

	// Phase 3: both observers (and a fresh process) read warm results
	// byte-identical to the cold run.
	renders := [2]string{}
	gate = make(chan struct{})
	for g := 0; g < 2; g++ {
		phase.Add(1)
		go func(g int) {
			defer phase.Done()
			<-gate
			hit, ok := c.Lookup(key)
			if !ok {
				t.Errorf("goroutine %d: lookup missed after repair", g)
				return
			}
			renders[g] = renderStore(hit.Store)
		}(g)
	}
	close(gate)
	phase.Wait()
	for g, got := range renders {
		if got != wantRender {
			t.Errorf("goroutine %d: warm render differs from cold run", g)
		}
	}
	if hit, ok := mustOpen(t, dir).Lookup(key); !ok {
		t.Fatal("fresh-process lookup missed after repair")
	} else if renderStore(hit.Store) != wantRender {
		t.Fatal("fresh-process warm render differs from cold run")
	}
}
