package factcache

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"determinacy/internal/core"
	"determinacy/internal/facts"
	"determinacy/internal/ir"
)

// testSrc exercises functions (chunk granularity), a loop (occurrence
// sequences), indeterminacy (Math.random) and a NaN value (the NumS wire
// path).
const testSrc = `
function add(a, b) { return a + b; }
function mul(a, b) { return a * b; }
var t = 0;
for (var i = 0; i < 5; i = i + 1) { t = add(t, mul(i, 2)); }
var r = Math.random();
var q = add(r, 1);
var nan = 0 / 0;
console.log(t);
console.log(nan);
`

type coldRun struct {
	mod    *ir.Module
	store  *facts.Store
	rec    *Recorder
	output []byte
	stats  core.Stats
}

// runCold executes testSrc-style source under the instrumented semantics
// with the entry recorder attached, as a caching layer would.
func runCold(t *testing.T, src string, seed uint64) *coldRun {
	t.Helper()
	mod, err := ir.Compile("cache.js", src)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	store := facts.NewStore()
	rec := NewRecorder()
	a := core.New(mod, store, core.Options{Seed: seed, Out: &out, OnEnterFunc: rec.OnEnter})
	if _, err := a.Run(); err != nil {
		t.Fatal(err)
	}
	return &coldRun{mod: mod, store: store, rec: rec, output: out.Bytes(), stats: a.Stats()}
}

// renderStore flattens a store — recording order AND sorted order — so two
// stores compare byte-for-byte.
func renderStore(s *facts.Store) string {
	var b strings.Builder
	for _, f := range s.All() {
		fmt.Fprintf(&b, "%d|%s|%d det=%v hits=%d val=%v\n", f.Instr, f.Ctx.Key(), f.Seq, f.Det, f.Hits, f.Val)
	}
	b.WriteString("#sorted\n")
	for _, f := range s.Sorted() {
		fmt.Fprintf(&b, "%d|%s|%d det=%v hits=%d val=%v\n", f.Instr, f.Ctx.Key(), f.Seq, f.Det, f.Hits, f.Val)
	}
	return b.String()
}

func mustOpen(t *testing.T, dir string) *Cache {
	t.Helper()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func storeRun(t *testing.T, c *Cache, key Key, r *coldRun) {
	t.Helper()
	if err := c.Store(key, r.mod, r.store, r.rec, r.output, r.stats, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripByteIdentity(t *testing.T) {
	dir := t.TempDir()
	cold := runCold(t, testSrc, 7)
	key := KeyFor("cache.js", testSrc, Sig{Seed: 7})

	c := mustOpen(t, dir)
	if _, ok := c.Lookup(key); ok {
		t.Fatal("lookup hit on an empty cache")
	}
	storeRun(t, c, key, cold)

	// A fresh Cache on the same dir simulates a new process: everything
	// must come back from disk.
	warm := mustOpen(t, dir)
	hit, ok := warm.Lookup(key)
	if !ok {
		t.Fatal("warm lookup missed")
	}
	if got, want := renderStore(hit.Store), renderStore(cold.store); got != want {
		t.Fatalf("stitched store differs from cold store:\n--- warm\n%s\n--- cold\n%s", got, want)
	}
	if !bytes.Equal(hit.Output, cold.output) {
		t.Fatalf("output differs: %q vs %q", hit.Output, cold.output)
	}
	if got, want := fmt.Sprintf("%+v", hit.Stats), fmt.Sprintf("%+v", cold.stats); got != want {
		t.Fatalf("stats differ:\n%s\nvs\n%s", got, want)
	}
	if hit.Chunks == 0 {
		t.Fatal("hit stitched zero chunks")
	}
	st := warm.Stats()
	if st.Hits != 1 || st.Joins != int64(hit.Chunks) {
		t.Fatalf("stats = %+v, want 1 hit and %d joins", st, hit.Chunks)
	}
}

func TestKeySeparatesOptionsAndSource(t *testing.T) {
	base := KeyFor("cache.js", testSrc, Sig{Seed: 7})
	for name, k := range map[string]Key{
		"seed":   KeyFor("cache.js", testSrc, Sig{Seed: 8}),
		"source": KeyFor("cache.js", testSrc+"\n", Sig{Seed: 7}),
		"file":   KeyFor("other.js", testSrc, Sig{Seed: 7}),
		"input":  KeyFor("cache.js", testSrc, Sig{Seed: 7, Inputs: []InputSig{{Name: "x", Kind: 3, NumBits: 1}}}),
	} {
		if k.ID() == base.ID() {
			t.Errorf("%s variation did not change the key", name)
		}
	}
	// Input order must NOT change the key (canonicalized by name).
	a := KeyFor("cache.js", testSrc, Sig{Inputs: []InputSig{{Name: "a"}, {Name: "b", Kind: 1}}})
	b := KeyFor("cache.js", testSrc, Sig{Inputs: []InputSig{{Name: "b", Kind: 1}, {Name: "a"}}})
	if a.ID() != b.ID() {
		t.Error("input order changed the key")
	}
	// Same (file, options) with different sources share the diff anchor.
	edited := KeyFor("cache.js", testSrc+"\n", Sig{Seed: 7})
	if base.head != edited.head {
		t.Error("source edit changed the diff anchor head")
	}
}

// dbFiles lists every record file under the cache dir (objects and heads).
func dbFiles(t *testing.T, dir string) []string {
	t.Helper()
	var files []string
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("cache dir holds no files")
	}
	return files
}

// TestCorruptionRecovery damages every DB file in several ways; each time,
// a fresh cache must miss cleanly (no panic, no wrong facts), and one
// re-store must fully repair the entry.
func TestCorruptionRecovery(t *testing.T) {
	cold := runCold(t, testSrc, 7)
	key := KeyFor("cache.js", testSrc, Sig{Seed: 7})

	damage := map[string]func([]byte) []byte{
		"truncate-header":  func(b []byte) []byte { return b[:headerSize/2] },
		"truncate-payload": func(b []byte) []byte { return b[:len(b)-1] },
		"flip-payload": func(b []byte) []byte {
			nb := append([]byte(nil), b...)
			nb[headerSize+(len(nb)-headerSize)/2] ^= 0x40
			return nb
		},
		"bad-magic": func(b []byte) []byte {
			nb := append([]byte(nil), b...)
			copy(nb, "NOPE")
			return nb
		},
		"future-version": func(b []byte) []byte {
			nb := append([]byte(nil), b...)
			binary.LittleEndian.PutUint16(nb[4:], Version+1)
			return nb
		},
		"empty": func([]byte) []byte { return nil },
	}
	for name, corrupt := range damage {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			c := mustOpen(t, dir)
			storeRun(t, c, key, cold)
			for _, path := range dbFiles(t, dir) {
				b, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, corrupt(b), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			// Fresh process: must fall back to a miss, possibly over a few
			// lookups as broken records are cleared, and must never serve
			// damaged facts.
			fresh := mustOpen(t, dir)
			if hit, ok := fresh.Lookup(key); ok {
				if got, want := renderStore(hit.Store), renderStore(cold.store); got != want {
					t.Fatalf("served wrong facts from damaged db")
				}
				t.Fatalf("lookup hit on a fully damaged db")
			}
			if fresh.Stats().Invalidations == 0 {
				t.Fatal("no invalidation recorded for damaged db")
			}
			// One re-store repairs everything, even with damaged object
			// files still sitting at their content addresses.
			storeRun(t, fresh, key, cold)
			again := mustOpen(t, dir)
			hit, ok := again.Lookup(key)
			if !ok {
				t.Fatal("lookup missed after repair")
			}
			if got, want := renderStore(hit.Store), renderStore(cold.store); got != want {
				t.Fatalf("repaired store differs:\n%s\nvs\n%s", got, want)
			}
		})
	}
}

func TestPartialObjectDamage(t *testing.T) {
	// Damage ONE object file at a time (leaving the rest intact): every
	// single-file corruption must degrade to a clean miss.
	cold := runCold(t, testSrc, 7)
	key := KeyFor("cache.js", testSrc, Sig{Seed: 7})
	dir := t.TempDir()
	c := mustOpen(t, dir)
	storeRun(t, c, key, cold)
	files := dbFiles(t, dir)
	for i, path := range files {
		orig, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		bad := append([]byte(nil), orig...)
		bad[len(bad)/2] ^= 0x01
		if err := os.WriteFile(path, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		// The invariant is "never wrong facts": a file off the lookup path
		// (the diff-anchor head) may still hit, but then the result must be
		// byte-identical to the cold run.
		fresh := mustOpen(t, dir)
		if hit, ok := fresh.Lookup(key); ok {
			if got, want := renderStore(hit.Store), renderStore(cold.store); got != want {
				t.Fatalf("file %d (%s): served wrong facts despite damage", i, filepath.Base(path))
			}
		}
		if err := os.WriteFile(path, orig, 0o644); err != nil {
			t.Fatal(err)
		}
		// Heads removed during invalidation stay gone until a re-store;
		// repair and continue.
		storeRun(t, mustOpen(t, dir), key, cold)
	}
}

func TestDiffAndChunkDedup(t *testing.T) {
	// Editing the tail of the program must leave the functions' chunks
	// reusable: Diff reports them unchanged and the second Store dedups
	// their chunks. (Chunks carry absolute instruction IDs, so only code at
	// or after the edit point re-encodes — an edit inside mul would shift
	// the loop's call-site IDs and with them add's fact contexts.)
	edited := strings.Replace(testSrc, "console.log(nan);", "console.log(nan + 0);", 1)
	if edited == testSrc {
		t.Fatal("edit did not apply")
	}
	coldA := runCold(t, testSrc, 7)
	coldB := runCold(t, edited, 7)
	keyA := KeyFor("cache.js", testSrc, Sig{Seed: 7})
	keyB := KeyFor("cache.js", edited, Sig{Seed: 7})
	if keyA.ID() == keyB.ID() {
		t.Fatal("edit did not change the full key")
	}

	dir := t.TempDir()
	c := mustOpen(t, dir)
	if _, ok := c.Diff(keyA, coldA.mod); ok {
		t.Fatal("diff found a manifest in an empty cache")
	}
	storeRun(t, c, keyA, coldA)

	rep, ok := c.Diff(keyB, coldB.mod)
	if !ok {
		t.Fatal("diff found no previous manifest via the head anchor")
	}
	// add and mul are untouched; the top level changed.
	if rep.Unchanged == 0 || rep.Changed == 0 {
		t.Fatalf("diff = %+v, want both unchanged and changed functions", rep)
	}
	if rep.Total != len(coldB.mod.Funcs) {
		t.Fatalf("diff total = %d, want %d", rep.Total, len(coldB.mod.Funcs))
	}

	storeRun(t, c, keyB, coldB)
	st := c.Stats()
	if st.ChunksDeduped == 0 {
		t.Fatalf("stats = %+v: unchanged function produced no chunk dedup", st)
	}
	// Both versions stay independently servable.
	for _, k := range []Key{keyA, keyB} {
		if _, ok := mustOpen(t, dir).Lookup(k); !ok {
			t.Fatalf("lookup missed for key %s", k.ID()[:8])
		}
	}
}

func TestEntrySignatureShapesChunkIdentity(t *testing.T) {
	// Same body, different entry determinacy (argument fed by Math.random
	// vs a constant) must produce different chunk objects.
	detSrc := `function f(a) { return a + 1; } console.log(f(2));`
	indetSrc := `function f(a) { return a + 1; } console.log(f(Math.random()));`
	a := runCold(t, detSrc, 1)
	b := runCold(t, indetSrc, 1)
	chunksA, _, err := splitChunks(a.mod, a.store, a.rec)
	if err != nil {
		t.Fatal(err)
	}
	chunksB, _, err := splitChunks(b.mod, b.store, b.rec)
	if err != nil {
		t.Fatal(err)
	}
	sigOf := func(chunks []*chunkPayload, body string) (uint64, bool) {
		for _, c := range chunks {
			if strings.Contains(body, "f") && c.Fn != 0 {
				return c.SigAnd, true
			}
		}
		return 0, false
	}
	sa, oka := sigOf(chunksA, detSrc)
	sb, okb := sigOf(chunksB, indetSrc)
	if !oka || !okb {
		t.Fatal("function chunk not found")
	}
	if sa == sb {
		t.Fatalf("entry signatures identical (%#x) despite determinacy difference", sa)
	}
	// The determinate call must mark argument 0 determinate.
	if sa&1 == 0 {
		t.Fatalf("determinate argument not reflected in signature %#x", sa)
	}
	if sb&1 != 0 {
		t.Fatalf("indeterminate argument marked determinate in signature %#x", sb)
	}
}

func TestDBFrameValidation(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDB(dir)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte(`{"hello":"world"}`)
	id, created, err := db.PutObject(KindChunk, payload)
	if err != nil || !created {
		t.Fatalf("put: created=%v err=%v", created, err)
	}
	if _, _, err := db.PutObject(KindChunk, payload); err != nil {
		t.Fatal(err)
	} else if _, created, _ := db.PutObject(KindChunk, payload); created {
		t.Fatal("identical payload not deduplicated")
	}
	got, err := db.GetObject(id, KindChunk)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("get: %q, %v", got, err)
	}
	// Wrong kind reads as corrupt.
	if _, err := db.GetObject(id, KindManifest); err == nil {
		t.Fatal("kind mismatch not detected")
	}
	// A record stored under the wrong address reads as corrupt even though
	// its frame validates.
	other := ObjectID([]byte("elsewhere"))
	if err := atomicWrite(filepath.Join(dir, "objects", other[:2], other), frame(KindChunk, payload)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.GetObject(other, KindChunk); err == nil {
		t.Fatal("address mismatch not detected")
	}
	// Heads.
	if err := db.SetHead("k", id); err != nil {
		t.Fatal(err)
	}
	if h, err := db.Head("k"); err != nil || h != id {
		t.Fatalf("head: %q, %v", h, err)
	}
	if _, err := db.Head("absent"); !IsNotExist(err) {
		t.Fatalf("missing head: %v", err)
	}
}

func TestStoreSkipsOversizedOutput(t *testing.T) {
	cold := runCold(t, testSrc, 7)
	key := KeyFor("cache.js", testSrc, Sig{Seed: 7})
	c := mustOpen(t, t.TempDir())
	big := make([]byte, MaxOutputBytes+1)
	if err := c.Store(key, cold.mod, cold.store, cold.rec, big, cold.stats, 0); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Lookup(key); ok {
		t.Fatal("oversized-output run was cached")
	}
	if c.Stats().Skips == 0 {
		t.Fatal("skip not recorded")
	}
}
