package factcache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
)

// On-disk record framing. Every file in the DB — content-addressed objects
// and mutable head pointers alike — carries the same header so a reader can
// always tell a valid record from a truncated or bit-flipped one:
//
//	magic "DFC1" (4) | version (2, LE) | kind (1) | crc32 (4, LE) | len (4, LE) | payload
//
// The CRC covers the payload only; the fixed-width fields are validated
// structurally. Any mismatch surfaces as ErrCorrupt (or ErrVersion for a
// clean header from a different format generation), never as a panic or a
// silently wrong payload.
const (
	dbMagic = "DFC1"
	// Version is the on-disk format version. Bump it on any wire change;
	// old files then read back as ErrVersion and are dropped like corrupt
	// ones, falling back to re-analysis.
	Version = 1

	headerSize = 4 + 2 + 1 + 4 + 4
)

// Record kinds.
const (
	// KindManifest is a per-(program, options) run manifest.
	KindManifest byte = 1
	// KindChunk is one function's fact chunk.
	KindChunk byte = 2
	// KindHead is a mutable pointer naming a manifest object.
	KindHead byte = 3
)

// ErrCorrupt reports a structurally invalid record: bad magic, impossible
// lengths, truncation, CRC mismatch, or a content address that does not
// match the payload.
var ErrCorrupt = errors.New("factcache: corrupt record")

// ErrVersion reports a record written by a different format version.
var ErrVersion = errors.New("factcache: format version mismatch")

// DB is the fact database's storage layer: immutable content-addressed
// objects under objects/, mutable head pointers under heads/. Writes are
// atomic (temp file + rename), so readers never observe a half-written
// record through the normal API — torn files can only come from external
// corruption, which reads detect and report.
type DB struct {
	dir string
	// putMu serializes PutObject's validate-or-rewrite check so that when
	// several goroutines repair the same damaged object, exactly one write
	// happens: the first put rewrites, the rest observe the now-valid file
	// and dedup. Object writes are rare (stores only), so one mutex for
	// the whole DB costs nothing on the read path.
	putMu sync.Mutex
}

// OpenDB creates or opens the database rooted at dir.
func OpenDB(dir string) (*DB, error) {
	for _, sub := range []string{"objects", "heads"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("factcache: open db: %w", err)
		}
	}
	return &DB{dir: dir}, nil
}

// Dir reports the database root.
func (db *DB) Dir() string { return db.dir }

func (db *DB) objectPath(id string) string {
	return filepath.Join(db.dir, "objects", id[:2], id)
}

func (db *DB) headPath(key string) string {
	return filepath.Join(db.dir, "heads", key)
}

// frame wraps payload in the record header.
func frame(kind byte, payload []byte) []byte {
	b := make([]byte, headerSize+len(payload))
	copy(b, dbMagic)
	binary.LittleEndian.PutUint16(b[4:], Version)
	b[6] = kind
	binary.LittleEndian.PutUint32(b[7:], crc32.ChecksumIEEE(payload))
	binary.LittleEndian.PutUint32(b[11:], uint32(len(payload)))
	copy(b[headerSize:], payload)
	return b
}

// unframe validates a record and returns its payload.
func unframe(b []byte, wantKind byte) ([]byte, error) {
	if len(b) < headerSize || string(b[:4]) != dbMagic {
		return nil, ErrCorrupt
	}
	if v := binary.LittleEndian.Uint16(b[4:]); v != Version {
		return nil, fmt.Errorf("%w: file has v%d, reader is v%d", ErrVersion, v, Version)
	}
	if b[6] != wantKind {
		return nil, fmt.Errorf("%w: record kind %d, want %d", ErrCorrupt, b[6], wantKind)
	}
	n := binary.LittleEndian.Uint32(b[11:])
	if uint64(len(b)) != uint64(headerSize)+uint64(n) {
		return nil, fmt.Errorf("%w: payload length %d, file holds %d", ErrCorrupt, n, len(b)-headerSize)
	}
	payload := b[headerSize:]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(b[7:]) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return payload, nil
}

// atomicWrite replaces path with data via a same-directory temp file and
// rename, so concurrent readers see either the old record or the new one,
// never a prefix.
func atomicWrite(path string, data []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// ObjectID is the content address of a payload.
func ObjectID(payload []byte) string {
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:])
}

// PutObject stores payload under its content address. created reports
// whether a new object was written (false = identical object already
// present, the dedup path). An existing file only counts as present if it
// validates — a corrupt or truncated object is rewritten, so one Store
// always repairs whatever external damage reads have detected.
func (db *DB) PutObject(kind byte, payload []byte) (id string, created bool, err error) {
	db.putMu.Lock()
	defer db.putMu.Unlock()
	id = ObjectID(payload)
	path := db.objectPath(id)
	if b, rerr := os.ReadFile(path); rerr == nil {
		if got, uerr := unframe(b, kind); uerr == nil && ObjectID(got) == id {
			return id, false, nil
		}
	}
	if err := atomicWrite(path, frame(kind, payload)); err != nil {
		return "", false, fmt.Errorf("factcache: put object: %w", err)
	}
	return id, true, nil
}

// GetObject reads and validates an object. A missing object returns an
// fs.ErrNotExist error; an invalid one returns ErrCorrupt/ErrVersion. The
// payload is additionally checked against its content address, so a record
// that passes the CRC but sits under the wrong name still reads as corrupt.
func (db *DB) GetObject(id string, wantKind byte) ([]byte, error) {
	if len(id) < 2 {
		return nil, fmt.Errorf("%w: malformed object id %q", ErrCorrupt, id)
	}
	b, err := os.ReadFile(db.objectPath(id))
	if err != nil {
		return nil, err
	}
	payload, err := unframe(b, wantKind)
	if err != nil {
		return nil, err
	}
	if ObjectID(payload) != id {
		return nil, fmt.Errorf("%w: content does not match address", ErrCorrupt)
	}
	return payload, nil
}

// RawObject reads an object's framed bytes exactly as stored, with no
// validation. The cluster's remote cache endpoint serves these, so every
// defect — a bit flip on this node's disk, corruption in transit, version
// skew between nodes — reaches the importing node's own unframe/CRC
// validation and is discarded there, counted by reason.
func (db *DB) RawObject(id string) ([]byte, error) {
	if len(id) < 2 {
		return nil, fmt.Errorf("%w: malformed object id %q", ErrCorrupt, id)
	}
	return os.ReadFile(db.objectPath(id))
}

// SplitFrames cuts a concatenated stream of framed records back into
// individual frames using the self-delimiting length field. It validates
// only enough structure to delimit (magic + length); full validation
// happens per-frame in unframe.
func SplitFrames(b []byte) ([][]byte, error) {
	var frames [][]byte
	for len(b) > 0 {
		if len(b) < headerSize || string(b[:4]) != dbMagic {
			return nil, ErrCorrupt
		}
		n := binary.LittleEndian.Uint32(b[11:])
		end := uint64(headerSize) + uint64(n)
		if uint64(len(b)) < end {
			return nil, fmt.Errorf("%w: truncated frame", ErrCorrupt)
		}
		frames = append(frames, b[:end])
		b = b[end:]
	}
	return frames, nil
}

// RemoveObject deletes an object (no-op if absent); used to clear records
// that failed validation so a later store can rewrite them.
func (db *DB) RemoveObject(id string) {
	if len(id) >= 2 {
		os.Remove(db.objectPath(id))
	}
}

// SetHead atomically points the named head at an object id.
func (db *DB) SetHead(key, id string) error {
	if err := atomicWrite(db.headPath(key), frame(KindHead, []byte(id))); err != nil {
		return fmt.Errorf("factcache: set head: %w", err)
	}
	return nil
}

// Head reads a head pointer. A missing head returns fs.ErrNotExist; an
// invalid one ErrCorrupt/ErrVersion.
func (db *DB) Head(key string) (string, error) {
	b, err := os.ReadFile(db.headPath(key))
	if err != nil {
		return "", err
	}
	payload, err := unframe(b, KindHead)
	if err != nil {
		return "", err
	}
	if len(payload) != 2*sha256.Size {
		return "", fmt.Errorf("%w: head names a malformed object id", ErrCorrupt)
	}
	return string(payload), nil
}

// RemoveHead deletes a head pointer (no-op if absent).
func (db *DB) RemoveHead(key string) {
	os.Remove(db.headPath(key))
}

// IsNotExist reports whether err is a plain absence (as opposed to
// corruption): the caller treats it as a quiet miss.
func IsNotExist(err error) bool { return errors.Is(err, fs.ErrNotExist) }
