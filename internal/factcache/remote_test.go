package factcache

import (
	"fmt"
	"sync"
	"testing"
)

// loopbackRemote serves another cache's records, optionally mangled — the
// in-process stand-in for a peer node's /v1/cluster/cache endpoint.
type loopbackRemote struct {
	src     *Cache
	mangle  func([]byte) []byte
	mu      sync.Mutex
	fetches int
}

func (r *loopbackRemote) Fetch(keyID, routeKey string) ([]byte, bool) {
	r.mu.Lock()
	r.fetches++
	r.mu.Unlock()
	data, ok := r.src.ExportRecords(keyID)
	if !ok {
		return nil, false
	}
	if r.mangle != nil {
		data = r.mangle(data)
	}
	return data, ok
}

// TestRemoteWarmByteIdentity pins the L3 path: a cache with an empty
// local DB but a remote peer serves a warm hit whose stitched store,
// output, and stats are byte-identical to the peer's cold run — and the
// records are imported, so the next lookup hits locally without another
// fetch.
func TestRemoteWarmByteIdentity(t *testing.T) {
	cold := runCold(t, testSrc, 7)
	key := KeyFor("cache.js", testSrc, Sig{Seed: 7})

	peer := mustOpen(t, t.TempDir())
	storeRun(t, peer, key, cold)

	remote := &loopbackRemote{src: peer}
	c := mustOpen(t, t.TempDir()).WithRemote(remote)
	hit, ok := c.Lookup(key)
	if !ok {
		t.Fatal("remote-backed lookup missed")
	}
	if got, want := renderStore(hit.Store), renderStore(cold.store); got != want {
		t.Fatalf("remote warm store diverges from cold run:\n got: %s\nwant: %s", got, want)
	}
	if string(hit.Output) != string(cold.output) {
		t.Fatalf("remote warm output diverges: %q vs %q", hit.Output, cold.output)
	}
	if fmt.Sprintf("%+v", hit.Stats) != fmt.Sprintf("%+v", cold.stats) {
		t.Fatalf("remote warm stats diverge: %+v vs %+v", hit.Stats, cold.stats)
	}
	st := c.Stats()
	if st.RemoteHits != 1 || st.Hits != 1 {
		t.Fatalf("stats after remote warm: %+v (want RemoteHits=1, Hits=1)", st)
	}

	// Records are now local: a fresh handle over the same dir hits with no
	// remote at all, and the remote-backed handle does not re-fetch.
	if _, ok := c.Lookup(key); !ok {
		t.Fatal("second lookup should hit")
	}
	if remote.fetches != 1 {
		t.Fatalf("remote fetched %d times, want 1 (records should be imported)", remote.fetches)
	}
	c2 := mustOpen(t, c.Dir())
	if _, ok := c2.Lookup(key); !ok {
		t.Fatal("imported records should serve a plain local hit")
	}
}

// TestRemoteInvalidPayloadsDiscarded drives every mangling a hostile or
// damaged peer can produce through the import validator: each is
// discarded with the right reason, nothing is imported, and the lookup
// stays a clean local miss.
func TestRemoteInvalidPayloadsDiscarded(t *testing.T) {
	cold := runCold(t, testSrc, 7)
	key := KeyFor("cache.js", testSrc, Sig{Seed: 7})
	peer := mustOpen(t, t.TempDir())
	storeRun(t, peer, key, cold)

	cases := []struct {
		name   string
		mangle func([]byte) []byte
	}{
		{"empty", func(b []byte) []byte { return nil }},
		{"garbage", func(b []byte) []byte { return []byte("HTTP error page, definitely not records") }},
		{"truncated", func(b []byte) []byte { return b[:len(b)/2] }},
		{"manifest-bitflip", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[headerSize+4] ^= 0x40 // inside the manifest payload
			return c
		}},
		{"chunk-bitflip", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)-3] ^= 0x01 // inside the last chunk payload
			return c
		}},
		{"version-skew", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[4] = 0x7f // future format version in the manifest header
			return c
		}},
		{"missing-chunks", func(b []byte) []byte {
			frames, err := SplitFrames(b)
			if err != nil {
				t.Fatal(err)
			}
			return append([]byte(nil), frames[0]...) // manifest only
		}},
		{"reordered", func(b []byte) []byte {
			frames, err := SplitFrames(b)
			if err != nil {
				t.Fatal(err)
			}
			if len(frames) < 3 {
				t.Fatalf("test needs ≥2 chunks, got %d frames", len(frames))
			}
			var out []byte
			out = append(out, frames[0]...)
			out = append(out, frames[2]...) // swap the first two chunks
			out = append(out, frames[1]...)
			for _, f := range frames[3:] {
				out = append(out, f...)
			}
			return out
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := mustOpen(t, t.TempDir()).WithRemote(&loopbackRemote{src: peer, mangle: tc.mangle})
			if _, ok := c.Lookup(key); ok {
				t.Fatal("mangled remote payload must not produce a hit")
			}
			st := c.Stats()
			if st.RemoteInvalid != 1 {
				t.Fatalf("RemoteInvalid = %d, want 1 (stats: %+v)", st.RemoteInvalid, st)
			}
			if st.RemoteHits != 0 || st.Misses != 1 {
				t.Fatalf("mangled payload must count a miss, no remote hit: %+v", st)
			}
			// Nothing may have been imported: a clean handle still misses.
			c2 := mustOpen(t, c.Dir())
			if _, ok := c2.Lookup(key); ok {
				t.Fatal("mangled payload leaked records into the local DB")
			}
		})
	}
}

// TestRemoteMissIsQuiet pins that a remote without the key (and a nil
// remote) is just a miss — no invalidations, no imports, no counters.
func TestRemoteMissIsQuiet(t *testing.T) {
	key := KeyFor("cache.js", testSrc, Sig{Seed: 7})
	empty := mustOpen(t, t.TempDir())
	c := mustOpen(t, t.TempDir()).WithRemote(&loopbackRemote{src: empty})
	if _, ok := c.Lookup(key); ok {
		t.Fatal("empty remote produced a hit")
	}
	st := c.Stats()
	if st.Misses != 1 || st.RemoteHits != 0 || st.RemoteInvalid != 0 || st.Invalidations != 0 {
		t.Fatalf("remote miss should be quiet: %+v", st)
	}
}

// TestExportRecordsRefusesInvalid pins that a node never knowingly serves
// damaged records: export fails once the local entry is broken.
func TestExportRecordsRefusesInvalid(t *testing.T) {
	cold := runCold(t, testSrc, 7)
	key := KeyFor("cache.js", testSrc, Sig{Seed: 7})
	c := mustOpen(t, t.TempDir())
	storeRun(t, c, key, cold)

	if _, ok := c.ExportRecords(key.ID()); !ok {
		t.Fatal("export of a healthy entry failed")
	}
	if _, ok := c.ExportRecords(""); ok {
		t.Fatal("export of the empty key succeeded")
	}
	if _, ok := c.ExportRecords(fmt.Sprintf("%064x", 0)); ok {
		t.Fatal("export of an absent key succeeded")
	}
	// Break the head: export must refuse.
	c.db.RemoveHead(key.ID())
	if _, ok := c.ExportRecords(key.ID()); ok {
		t.Fatal("export served a key with no head")
	}
}
