package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

func ev(kind EventKind, phase string, n1 int64) Event {
	return Event{Kind: kind, Phase: phase, N1: n1}
}

func TestObsCollectorOrdering(t *testing.T) {
	tests := []struct {
		name     string
		capacity int
		send     []Event
		want     []Event // expected retained events, oldest first
		dropped  uint64
	}{
		{
			name:     "under capacity preserves order",
			capacity: 8,
			send: []Event{
				ev(EvPhaseBegin, "parse", 0),
				ev(EvHeapFlush, "indet-call", 1),
				ev(EvPhaseEnd, "parse", 0),
			},
			want: []Event{
				ev(EvPhaseBegin, "parse", 0),
				ev(EvHeapFlush, "indet-call", 1),
				ev(EvPhaseEnd, "parse", 0),
			},
		},
		{
			name:     "exactly at capacity",
			capacity: 2,
			send:     []Event{ev(EvCFEnter, "", 1), ev(EvCFExit, "", 1)},
			want:     []Event{ev(EvCFEnter, "", 1), ev(EvCFExit, "", 1)},
		},
		{
			name:     "wraparound keeps newest in order",
			capacity: 3,
			send: []Event{
				ev(EvHeapFlush, "a", 1), ev(EvHeapFlush, "b", 2), ev(EvHeapFlush, "c", 3),
				ev(EvHeapFlush, "d", 4), ev(EvHeapFlush, "e", 5),
			},
			want:    []Event{ev(EvHeapFlush, "c", 3), ev(EvHeapFlush, "d", 4), ev(EvHeapFlush, "e", 5)},
			dropped: 2,
		},
		{
			name:     "wraparound multiple cycles",
			capacity: 2,
			send: []Event{
				ev(EvTaint, "m1", 1), ev(EvTaint, "m2", 2), ev(EvTaint, "m3", 3),
				ev(EvTaint, "m4", 4), ev(EvTaint, "m5", 5), ev(EvTaint, "m6", 6),
				ev(EvTaint, "m7", 7),
			},
			want:    []Event{ev(EvTaint, "m6", 6), ev(EvTaint, "m7", 7)},
			dropped: 5,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := NewCollector(tt.capacity)
			for _, e := range tt.send {
				c.Event(e)
			}
			got := c.Events()
			if len(got) != len(tt.want) {
				t.Fatalf("retained %d events, want %d: %v", len(got), len(tt.want), got)
			}
			for i := range got {
				if got[i] != tt.want[i] {
					t.Errorf("event %d = %+v, want %+v", i, got[i], tt.want[i])
				}
			}
			if c.Dropped() != tt.dropped {
				t.Errorf("Dropped() = %d, want %d", c.Dropped(), tt.dropped)
			}
			if c.Total() != uint64(len(tt.send)) {
				t.Errorf("Total() = %d, want %d", c.Total(), len(tt.send))
			}
		})
	}
}

func TestObsCollectorCount(t *testing.T) {
	c := NewCollector(16)
	for i := 0; i < 3; i++ {
		c.Event(ev(EvHeapFlush, "r", int64(i)))
	}
	c.Event(ev(EvCFEnter, "", 1))
	if got := c.Count(EvHeapFlush); got != 3 {
		t.Errorf("Count(EvHeapFlush) = %d, want 3", got)
	}
	if got := c.Count(EvEval); got != 0 {
		t.Errorf("Count(EvEval) = %d, want 0", got)
	}
}

func TestObsJSONLWriter(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONLWriter(&buf)
	j.Event(Event{Kind: EvPhaseBegin, Phase: "exec"})
	j.Event(Event{Kind: EvHeapFlush, Phase: "indet-call", N1: 2, N2: 7})
	j.Event(Event{Kind: EvSolver, N1: 1, N2: 2, N3: 3, N4: 4})
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3:\n%s", len(lines), buf.String())
	}
	for i, line := range lines {
		if !json.Valid([]byte(line)) {
			t.Fatalf("line %d is not valid JSON: %s", i, line)
		}
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatal(err)
		}
		if _, ok := rec["ev"]; !ok {
			t.Errorf("line %d missing ev field: %s", i, line)
		}
		if got := rec["seq"].(float64); got != float64(i) {
			t.Errorf("line %d seq = %v, want %d", i, got, i)
		}
	}
	var second map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatal(err)
	}
	if second["ev"] != "heap-flush" || second["phase"] != "indet-call" || second["n2"].(float64) != 7 {
		t.Errorf("unexpected flush record: %v", second)
	}
}

func TestObsChromeTraceValidity(t *testing.T) {
	tests := []struct {
		name string
		send []Event
		// wantNames must all appear among the record names.
		wantNames []string
	}{
		{
			name: "phases and flushes",
			send: []Event{
				ev(EvPhaseBegin, "parse", 0), ev(EvPhaseEnd, "parse", 0),
				ev(EvPhaseBegin, "exec", 0),
				ev(EvHeapFlush, "indet-call", 1),
				ev(EvPhaseEnd, "exec", 0),
			},
			wantNames: []string{"parse", "exec", "flush:indet-call"},
		},
		{
			name: "counterfactual nesting and solver counters",
			send: []Event{
				{Kind: EvCFEnter, N1: 1}, {Kind: EvCFEnter, N1: 2},
				{Kind: EvCFExit, N1: 2}, {Kind: EvCFExit, N1: 1},
				{Kind: EvBranchEnter, Detail: "loop", N1: 1}, {Kind: EvBranchExit, Detail: "loop", N1: 1},
				{Kind: EvSolver, N1: 100, N2: 5, N3: 40, N4: 12},
				{Kind: EvFactRecord, N1: 3, N2: 1},
				{Kind: EvFactInvalidate, N1: 3},
				{Kind: EvEval, Detail: "indet", N1: 42},
				{Kind: EvTaint, Phase: "post-branch-mark", N1: 9},
				{Kind: EvEnvFlush, N1: 1},
			},
			wantNames: []string{"counterfactual", "indet-loop", "pointsto", "eval:indet",
				"taint:post-branch-mark", "env-flush", "facts"},
		},
		{
			name:      "empty trace is still valid",
			send:      nil,
			wantNames: []string{"facts"},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			ct := NewChromeTrace()
			for _, e := range tt.send {
				ct.Event(e)
			}
			var buf bytes.Buffer
			if _, err := ct.WriteTo(&buf); err != nil {
				t.Fatal(err)
			}
			if !json.Valid(buf.Bytes()) {
				t.Fatalf("chrome trace is not valid JSON:\n%s", buf.String())
			}
			var doc struct {
				TraceEvents []map[string]any `json:"traceEvents"`
			}
			if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
				t.Fatal(err)
			}
			names := map[string]bool{}
			for i, rec := range doc.TraceEvents {
				ph, ok := rec["ph"].(string)
				if !ok || ph == "" {
					t.Errorf("record %d missing ph: %v", i, rec)
				}
				if _, ok := rec["ts"].(float64); !ok {
					t.Errorf("record %d missing ts: %v", i, rec)
				}
				if name, ok := rec["name"].(string); ok {
					names[name] = true
				}
			}
			for _, want := range tt.wantNames {
				if !names[want] {
					t.Errorf("trace missing record name %q; have %v", want, names)
				}
			}
		})
	}
}

func TestObsChromeBeginEndBalance(t *testing.T) {
	ct := NewChromeTrace()
	ct.Event(Event{Kind: EvPhaseBegin, Phase: "exec"})
	ct.Event(Event{Kind: EvCFEnter, N1: 1})
	ct.Event(Event{Kind: EvCFExit, N1: 1})
	ct.Event(Event{Kind: EvPhaseEnd, Phase: "exec"})
	var buf bytes.Buffer
	if _, err := ct.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			Tid int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	depth := map[int]int{}
	for _, rec := range doc.TraceEvents {
		switch rec.Ph {
		case "B":
			depth[rec.Tid]++
		case "E":
			depth[rec.Tid]--
			if depth[rec.Tid] < 0 {
				t.Fatalf("E without matching B on tid %d", rec.Tid)
			}
		}
	}
	for tid, d := range depth {
		if d != 0 {
			t.Errorf("tid %d ends with %d unclosed B records", tid, d)
		}
	}
}

func TestObsMetricsDumpDeterminism(t *testing.T) {
	build := func(order []int) *Metrics {
		m := NewMetrics()
		ops := []func(){
			func() { m.Counter("zeta_total").Add(3) },
			func() { m.Counter(`alpha_total{reason="x"}`).Inc() },
			func() { m.Gauge("beta_gauge").Set(2.5) },
			func() {
				h := m.Histogram("depth", 1, 2, 5)
				h.Observe(1)
				h.Observe(3)
				h.Observe(100)
			},
		}
		for _, i := range order {
			ops[i]()
		}
		return m
	}
	var a, b, a2 bytes.Buffer
	ma := build([]int{0, 1, 2, 3})
	mb := build([]int{3, 2, 1, 0})
	if err := ma.WriteProm(&a); err != nil {
		t.Fatal(err)
	}
	if err := mb.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("prom dump depends on registration order:\n--- a ---\n%s--- b ---\n%s", a.String(), b.String())
	}
	// Repeated dumps of the same registry are identical.
	if err := ma.WriteProm(&a2); err != nil {
		t.Fatal(err)
	}
	if a.String() != a2.String() {
		t.Errorf("repeated prom dumps differ")
	}

	var ja, jb bytes.Buffer
	if err := ma.WriteJSON(&ja); err != nil {
		t.Fatal(err)
	}
	if err := mb.WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	if ja.String() != jb.String() {
		t.Errorf("json dump depends on registration order:\n%s\nvs\n%s", ja.String(), jb.String())
	}
	if !json.Valid(ja.Bytes()) {
		t.Fatalf("metrics JSON invalid: %s", ja.String())
	}
}

func TestObsMetricsContent(t *testing.T) {
	m := NewMetrics()
	m.Counter("flushes_total").Add(7)
	m.Counter("flushes_total").Inc() // same handle by name
	m.Gauge("hwm").SetMax(3)
	m.Gauge("hwm").SetMax(2) // lower, must not replace
	h := m.Histogram("cf_depth", 1, 2, 4)
	for _, v := range []float64{1, 1, 2, 3, 9} {
		h.Observe(v)
	}

	if got := m.Counter("flushes_total").Value(); got != 8 {
		t.Errorf("counter = %d, want 8", got)
	}
	if got := m.Gauge("hwm").Value(); got != 3 {
		t.Errorf("gauge = %v, want 3", got)
	}
	if got := h.Count(); got != 5 {
		t.Errorf("histogram count = %d, want 5", got)
	}
	if got := h.Sum(); got != 16 {
		t.Errorf("histogram sum = %v, want 16", got)
	}

	var buf bytes.Buffer
	if err := m.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE flushes_total counter",
		"flushes_total 8",
		"hwm 3",
		`cf_depth_bucket{le="1"} 2`,
		`cf_depth_bucket{le="2"} 3`,
		`cf_depth_bucket{le="4"} 4`,
		`cf_depth_bucket{le="+Inf"} 5`,
		"cf_depth_sum 16",
		"cf_depth_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom dump missing %q:\n%s", want, out)
		}
	}
}

func TestObsMulti(t *testing.T) {
	if got := Multi(nil, nil); got != nil {
		t.Errorf("Multi(nil, nil) = %v, want nil", got)
	}
	c := NewCollector(4)
	if got := Multi(nil, c, nil); got != Tracer(c) {
		t.Errorf("Multi with one live tracer should return it directly")
	}
	c2 := NewCollector(4)
	m := Multi(c, c2)
	m.Event(ev(EvHeapFlush, "r", 1))
	if c.Total() != 1 || c2.Total() != 1 {
		t.Errorf("multi did not fan out: %d, %d", c.Total(), c2.Total())
	}
}

func TestObsPhaseScope(t *testing.T) {
	c := NewCollector(8)
	done := PhaseScope(c, "solve")
	done()
	evs := c.Events()
	if len(evs) != 2 || evs[0].Kind != EvPhaseBegin || evs[1].Kind != EvPhaseEnd ||
		evs[0].Phase != "solve" || evs[1].Phase != "solve" {
		t.Fatalf("unexpected phase events: %+v", evs)
	}
	// nil tracer path must be a no-op and must not panic.
	PhaseScope(nil, "x")()
}

// TestObsDisabledPathAllocs asserts that the guarded emission pattern used
// throughout the pipeline — and PhaseScope with a nil tracer — performs no
// allocation when tracing is disabled.
func TestObsDisabledPathAllocs(t *testing.T) {
	var tr Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		if tr != nil {
			tr.Event(Event{Kind: EvHeapFlush, Phase: "indet-call", N1: 1, N2: 2})
		}
		PhaseScope(tr, "exec")()
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing path allocates %v bytes/op, want 0", allocs)
	}
}

func TestObsEventKindString(t *testing.T) {
	seen := map[string]bool{}
	for k := EventKind(0); k < numEventKinds; k++ {
		s := k.String()
		if s == "" || s == "unknown" {
			t.Errorf("kind %d has no name", k)
		}
		if seen[s] {
			t.Errorf("duplicate kind name %q", s)
		}
		seen[s] = true
	}
	if EventKind(200).String() != "unknown" {
		t.Errorf("out-of-range kind should stringify as unknown")
	}
}

func ExampleMetrics_WriteProm() {
	m := NewMetrics()
	m.Counter("analysis_heap_flushes_total").Add(3)
	m.Gauge("pointsto_worklist_hwm").Set(17)
	var buf bytes.Buffer
	if err := m.WriteProm(&buf); err != nil {
		panic(err)
	}
	fmt.Print(buf.String())
	// Output:
	// # TYPE analysis_heap_flushes_total counter
	// analysis_heap_flushes_total 3
	// # TYPE pointsto_worklist_hwm gauge
	// pointsto_worklist_hwm 17
}
