package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestRequestTraceRetainsAndStamps(t *testing.T) {
	rt := NewRequestTrace("req-1", 8)
	if rt.ID() != "req-1" {
		t.Fatalf("ID = %q", rt.ID())
	}
	for i := 0; i < 5; i++ {
		rt.Event(Event{Kind: EvFactRecord, N1: int64(i)})
	}
	evs := rt.Events()
	if len(evs) != 5 || rt.Total() != 5 || rt.Dropped() != 0 {
		t.Fatalf("events=%d total=%d dropped=%d", len(evs), rt.Total(), rt.Dropped())
	}
	for i, te := range evs {
		if te.Seq != uint64(i) || te.N1 != int64(i) {
			t.Fatalf("event %d: seq=%d n1=%d", i, te.Seq, te.N1)
		}
		if te.TsUS < 0 {
			t.Fatalf("event %d: negative timestamp", i)
		}
	}
}

func TestRequestTraceRingDropsOldest(t *testing.T) {
	rt := NewRequestTrace("ring", 4)
	for i := 0; i < 10; i++ {
		rt.Event(Event{Kind: EvFactRecord, N1: int64(i)})
	}
	evs := rt.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	if rt.Total() != 10 || rt.Dropped() != 6 {
		t.Fatalf("total=%d dropped=%d, want 10/6", rt.Total(), rt.Dropped())
	}
	// Newest 4 survive, oldest-first, with original sequence numbers.
	for i, te := range evs {
		want := int64(6 + i)
		if te.N1 != want || te.Seq != uint64(want) {
			t.Fatalf("slot %d: n1=%d seq=%d, want %d", i, te.N1, te.Seq, want)
		}
	}
}

func TestRequestTraceSpans(t *testing.T) {
	rt := NewRequestTrace("spans", 0)
	rt.Event(Event{Kind: EvPhaseBegin, Phase: "parse"})
	rt.Event(Event{Kind: EvPhaseEnd, Phase: "parse"})
	rt.Event(Event{Kind: EvPhaseBegin, Phase: "exec"})
	rt.Event(Event{Kind: EvPhaseBegin, Phase: "solve"}) // nested
	rt.Event(Event{Kind: EvPhaseEnd, Phase: "solve"})
	rt.Event(Event{Kind: EvPhaseEnd, Phase: "exec"})
	rt.Event(Event{Kind: EvPhaseEnd, Phase: "orphan"}) // no begin: ignored

	spans := rt.Spans()
	if len(spans) != 3 {
		t.Fatalf("spans = %+v, want 3", spans)
	}
	order := []string{"parse", "solve", "exec"} // completion order
	for i, want := range order {
		if spans[i].Phase != want {
			t.Fatalf("span %d = %q, want %q", i, spans[i].Phase, want)
		}
		if spans[i].DurUS < 0 || spans[i].StartUS < 0 {
			t.Fatalf("span %d has negative times: %+v", i, spans[i])
		}
	}
}

func TestRequestTraceWriteJSONL(t *testing.T) {
	rt := NewRequestTrace("jsonl", 0)
	rt.Event(Event{Kind: EvPhaseBegin, Phase: "exec"})
	rt.Event(Event{Kind: EvHeapFlush, Phase: "budget", N1: 1, N2: 2})
	rt.Event(Event{Kind: EvPhaseEnd, Phase: "exec"})

	var buf bytes.Buffer
	if err := rt.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3:\n%s", len(lines), buf.String())
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &rec); err != nil {
		t.Fatalf("line 2 not JSON: %v", err)
	}
	if rec["ev"] != "heap-flush" || rec["phase"] != "budget" || rec["seq"] != float64(1) {
		t.Fatalf("line 2 = %v", rec)
	}
}

func TestRequestTraceWriteChromeTrace(t *testing.T) {
	rt := NewRequestTrace("chrome", 0)
	rt.Event(Event{Kind: EvPhaseBegin, Phase: "exec"})
	rt.Event(Event{Kind: EvCache, Phase: "progcache", Detail: "hit"})
	rt.Event(Event{Kind: EvPhaseEnd, Phase: "exec"})

	var buf bytes.Buffer
	if _, err := rt.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Ts   int64  `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome doc not JSON: %v", err)
	}
	// exec B, cache instant, exec E, plus the trailing facts counter.
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("got %d records, want 4: %+v", len(doc.TraceEvents), doc.TraceEvents)
	}
	if doc.TraceEvents[1].Name != "cache:hit" {
		t.Fatalf("record 1 = %+v", doc.TraceEvents[1])
	}
	// Replayed timestamps must be monotone: the closing counter may not
	// precede the last replayed event.
	last := doc.TraceEvents[len(doc.TraceEvents)-1]
	if last.Ts < doc.TraceEvents[2].Ts {
		t.Fatalf("final counter ts %d precedes last event ts %d", last.Ts, doc.TraceEvents[2].Ts)
	}
}

func TestFlightRecorderRingAndLookup(t *testing.T) {
	f := NewFlightRecorder(3)
	for i := 0; i < 5; i++ {
		id := fmt.Sprintf("req-%d", i)
		f.Record(FlightEntry{TraceID: id, Status: 200, Outcome: "ok"}, NewRequestTrace(id, 4))
	}
	if f.Len() != 3 || f.Total() != 5 {
		t.Fatalf("len=%d total=%d, want 3/5", f.Len(), f.Total())
	}
	entries := f.Entries()
	want := []string{"req-4", "req-3", "req-2"} // newest first
	for i, w := range want {
		if entries[i].TraceID != w {
			t.Fatalf("entry %d = %q, want %q", i, entries[i].TraceID, w)
		}
	}
	// Evicted IDs are gone from the index; retained ones resolve.
	if _, _, ok := f.Lookup("req-0"); ok {
		t.Fatal("req-0 should have been evicted")
	}
	e, tr, ok := f.Lookup("req-3")
	if !ok || e.TraceID != "req-3" || tr == nil || tr.ID() != "req-3" {
		t.Fatalf("Lookup(req-3) = %+v, %v, %v", e, tr, ok)
	}
}

func TestFlightRecorderDuplicateIDs(t *testing.T) {
	f := NewFlightRecorder(2)
	f.Record(FlightEntry{TraceID: "dup", Status: 200}, nil)
	f.Record(FlightEntry{TraceID: "dup", Status: 500}, nil)
	e, _, ok := f.Lookup("dup")
	if !ok || e.Status != 500 {
		t.Fatalf("Lookup(dup) = %+v, %v; want newest recording (500)", e, ok)
	}
	// Evicting the older duplicate must not orphan the newer one's index.
	f.Record(FlightEntry{TraceID: "other-1", Status: 200}, nil)
	if e, _, ok = f.Lookup("dup"); !ok || e.Status != 500 {
		t.Fatalf("after one eviction, Lookup(dup) = %+v, %v", e, ok)
	}
	f.Record(FlightEntry{TraceID: "other-2", Status: 200}, nil)
	if _, _, ok = f.Lookup("dup"); ok {
		t.Fatal("dup should be fully evicted")
	}
}

func TestFlightRecorderNilTrace(t *testing.T) {
	f := NewFlightRecorder(0)
	f.Record(FlightEntry{TraceID: "untraced", Status: 200, Outcome: "ok"}, nil)
	e, tr, ok := f.Lookup("untraced")
	if !ok || tr != nil || e.Outcome != "ok" {
		t.Fatalf("Lookup = %+v, %v, %v", e, tr, ok)
	}
}

func TestRequestTraceConcurrent(t *testing.T) {
	rt := NewRequestTrace("conc", 64)
	f := NewFlightRecorder(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				rt.Event(Event{Kind: EvFactRecord, N1: int64(g)})
				if i%10 == 0 {
					f.Record(FlightEntry{TraceID: fmt.Sprintf("g%d-%d", g, i)}, rt)
					f.Entries()
					rt.Spans()
				}
			}
		}(g)
	}
	wg.Wait()
	if rt.Total() != 800 {
		t.Fatalf("total = %d, want 800", rt.Total())
	}
	if len(rt.Events()) != 64 {
		t.Fatalf("retained = %d, want 64", len(rt.Events()))
	}
}
