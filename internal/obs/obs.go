// Package obs is the zero-dependency observability layer for the
// determinacy pipeline: a typed event stream (Tracer) plus a registry of
// named metrics (Metrics).
//
// The paper's headline results are explained by internal dynamics — heap
// flush counts (§4), counterfactual nesting (§3.3), points-to propagation
// work (§5.1) — so every stage of the pipeline emits events describing
// those dynamics. A nil Tracer disables tracing; every emission site is
// guarded so the disabled path costs one predictable branch and zero
// allocations (asserted by TestObsDisabledTracerZeroAlloc).
//
// Built-in sinks:
//
//   - Collector: ring-buffered in-memory sink for tests and summaries.
//   - JSONLWriter: one JSON object per event, for ad-hoc tooling.
//   - ChromeTrace: Chrome trace_event JSON, loadable in Perfetto or
//     about://tracing, showing phase timings and counterfactual nesting.
//
// Metrics are dumped either as a Prometheus-style text page (WriteProm) or
// as deterministic JSON (WriteJSON), so EXPERIMENTS.md tables regenerate
// from machine-readable output.
package obs

// EventKind discriminates trace events.
type EventKind uint8

// Event kinds. The numeric payload fields N1..N4 of Event carry
// kind-specific data, documented per kind.
const (
	// EvPhaseBegin/EvPhaseEnd bracket a pipeline phase; Phase is the phase
	// name (parse, lower, exec, handlers, solve, specialize).
	EvPhaseBegin EventKind = iota
	EvPhaseEnd
	// EvHeapFlush is one heap flush; Phase is the reason, N1 the heap
	// epoch after the flush, N2 the cumulative flush count.
	EvHeapFlush
	// EvEnvFlush is one environment flush; N1 is the env epoch after it.
	EvEnvFlush
	// EvBranchEnter/EvBranchExit bracket execution under an
	// indeterminate-condition branch frame; N1 is the branch-stack depth,
	// Detail is "loop" for loop-continuation frames (stable occurrence
	// numbering) and empty otherwise.
	EvBranchEnter
	EvBranchExit
	// EvCFEnter/EvCFExit bracket a counterfactual execution (rule CNTR);
	// N1 is the counterfactual nesting depth (1 = outermost).
	EvCFEnter
	EvCFExit
	// EvTaint reports indeterminacy spreading to a set of locations; Phase
	// is the mechanism (post-branch-mark, cf-undo-mark, static-writes,
	// open-record), N1 the number of affected locations.
	EvTaint
	// EvFactRecord is one fact observation; N1 is the instruction ID, N2
	// is 1 when the observation is determinate and 0 otherwise.
	EvFactRecord
	// EvFactInvalidate reports a previously determinate fact joining to
	// indeterminate; N1 is the instruction ID.
	EvFactInvalidate
	// EvEval is a dynamically encountered eval call; Detail is "det" or
	// "indet" (the argument's determinacy), N1 the source length.
	EvEval
	// EvSolver is a points-to worklist snapshot; N1 is propagation work so
	// far, N2 the current worklist length, N3 the node count, N4 the
	// abstract-object count.
	EvSolver
	// EvGuard is a guard-layer outcome: Phase is "degrade" (graceful
	// partial result; Detail the DegradeReason) or "recover" (panic
	// converted to a structured error; Detail the panicking phase).
	EvGuard
	// EvCache is a compile-cache lookup; Phase is the cache name and
	// Detail "hit" or "miss".
	EvCache
	numEventKinds
)

var kindNames = [numEventKinds]string{
	EvPhaseBegin:     "phase-begin",
	EvPhaseEnd:       "phase-end",
	EvHeapFlush:      "heap-flush",
	EvEnvFlush:       "env-flush",
	EvBranchEnter:    "branch-enter",
	EvBranchExit:     "branch-exit",
	EvCFEnter:        "cf-enter",
	EvCFExit:         "cf-exit",
	EvTaint:          "taint",
	EvFactRecord:     "fact-record",
	EvFactInvalidate: "fact-invalidate",
	EvEval:           "eval",
	EvSolver:         "solver",
	EvGuard:          "guard",
	EvCache:          "cache",
}

func (k EventKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Event is one trace record. It is passed by value so that emitting into a
// nil-guarded tracer performs no heap allocation. Timestamps are stamped by
// sinks on arrival, keeping emission sites cheap.
type Event struct {
	Kind EventKind
	// Phase carries the phase name (EvPhase*), flush reason (EvHeapFlush)
	// or taint mechanism (EvTaint).
	Phase string
	// Detail is a secondary discriminator; see the kind docs.
	Detail string
	// N1..N4 are kind-specific numeric payloads; see the kind docs.
	N1, N2, N3, N4 int64
}

// Tracer receives the event stream. Implementations must be safe for use
// from a single goroutine per pipeline; the built-in sinks are additionally
// mutex-guarded so one sink can serve concurrent pipelines.
type Tracer interface {
	Event(e Event)
}

// multi fans events out to several tracers.
type multi []Tracer

func (m multi) Event(e Event) {
	for _, t := range m {
		t.Event(e)
	}
}

// Multi combines tracers, dropping nils. It returns nil when no tracer
// remains, preserving the disabled fast path, and the sole tracer when only
// one remains.
func Multi(ts ...Tracer) Tracer {
	var out multi
	for _, t := range ts {
		if t != nil {
			out = append(out, t)
		}
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	}
	return out
}

// noop is shared by PhaseScope so the disabled path allocates nothing.
var noop = func() {}

// PhaseScope emits EvPhaseBegin and returns a function emitting the
// matching EvPhaseEnd. With a nil tracer it returns a shared no-op.
func PhaseScope(t Tracer, name string) func() {
	if t == nil {
		return noop
	}
	t.Event(Event{Kind: EvPhaseBegin, Phase: name})
	return func() { t.Event(Event{Kind: EvPhaseEnd, Phase: name}) }
}
