package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// ---------------------------------------------------------------------------
// RequestTrace: per-request event retention with timestamps and phase spans

// TimedEvent is one Event stamped on arrival at a RequestTrace.
type TimedEvent struct {
	Event
	// Seq is the event's position in the request's full stream (dropped
	// events still advance it).
	Seq uint64
	// TsUS is microseconds since the trace started.
	TsUS int64
}

// PhaseSpan is one completed pipeline phase observed by a RequestTrace:
// the interval between a phase-begin/phase-end pair.
type PhaseSpan struct {
	Phase   string `json:"phase"`
	StartUS int64  `json:"start_us"`
	DurUS   int64  `json:"dur_us"`
}

// Seconds reports the span duration in seconds (histogram units).
func (s PhaseSpan) Seconds() float64 { return float64(s.DurUS) / 1e6 }

// DefaultTraceEventCap bounds retained events per request when
// NewRequestTrace is given a non-positive capacity. Fact-record traffic can
// reach tens of thousands of events per run; the ring keeps the newest.
const DefaultTraceEventCap = 4096

// RequestTrace is a Tracer that retains one request's event stream: events
// are stamped with microseconds-since-start, kept in a bounded ring
// (newest win), and phase begin/end pairs are folded into spans so callers
// can derive per-phase latencies without replaying the stream. It is safe
// for concurrent emitters (multi-seed merges fan one request's runs across
// workers).
type RequestTrace struct {
	id    string
	start time.Time

	mu     sync.Mutex
	events []TimedEvent
	cap    int
	next   int // oldest slot once the ring is full
	total  uint64
	spans  []PhaseSpan
	open   []openPhase
}

type openPhase struct {
	name string
	ts   int64
}

// NewRequestTrace creates a trace for one request. capacity bounds the
// retained events (DefaultTraceEventCap when <= 0).
func NewRequestTrace(id string, capacity int) *RequestTrace {
	if capacity <= 0 {
		capacity = DefaultTraceEventCap
	}
	return &RequestTrace{id: id, start: time.Now(), cap: capacity}
}

// ID returns the trace's request ID.
func (rt *RequestTrace) ID() string { return rt.id }

// Start returns when the trace began.
func (rt *RequestTrace) Start() time.Time { return rt.start }

// Event implements Tracer.
func (rt *RequestTrace) Event(e Event) {
	ts := time.Since(rt.start).Microseconds()
	rt.mu.Lock()
	te := TimedEvent{Event: e, Seq: rt.total, TsUS: ts}
	rt.total++
	if len(rt.events) < rt.cap {
		rt.events = append(rt.events, te)
	} else {
		rt.events[rt.next] = te
		rt.next++
		if rt.next == rt.cap {
			rt.next = 0
		}
	}
	switch e.Kind {
	case EvPhaseBegin:
		rt.open = append(rt.open, openPhase{e.Phase, ts})
	case EvPhaseEnd:
		// Innermost matching begin wins; phases are few, linear scan is fine.
		for i := len(rt.open) - 1; i >= 0; i-- {
			if rt.open[i].name == e.Phase {
				rt.spans = append(rt.spans, PhaseSpan{Phase: e.Phase, StartUS: rt.open[i].ts, DurUS: ts - rt.open[i].ts})
				rt.open = append(rt.open[:i], rt.open[i+1:]...)
				break
			}
		}
	}
	rt.mu.Unlock()
}

// Events returns the retained events oldest-first.
func (rt *RequestTrace) Events() []TimedEvent {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make([]TimedEvent, 0, len(rt.events))
	out = append(out, rt.events[rt.next:]...)
	out = append(out, rt.events[:rt.next]...)
	return out
}

// Spans returns the completed phase spans in completion order.
func (rt *RequestTrace) Spans() []PhaseSpan {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make([]PhaseSpan, len(rt.spans))
	copy(out, rt.spans)
	return out
}

// Total reports how many events were ever received.
func (rt *RequestTrace) Total() uint64 {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.total
}

// Dropped reports how many events fell out of the ring.
func (rt *RequestTrace) Dropped() uint64 {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.total - uint64(len(rt.events))
}

// WriteJSONL writes the retained events as JSON lines in the same wire
// shape as JSONLWriter, preserving original sequence numbers and
// timestamps.
func (rt *RequestTrace) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, te := range rt.Events() {
		rec := jsonlEvent{
			Seq:    te.Seq,
			TsUS:   te.TsUS,
			Kind:   te.Kind.String(),
			Phase:  te.Phase,
			Detail: te.Detail,
			N1:     te.N1, N2: te.N2, N3: te.N3, N4: te.N4,
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return nil
}

// WriteChromeTrace writes the retained events as a Chrome trace_event
// document, replayed with their original timestamps.
func (rt *RequestTrace) WriteChromeTrace(w io.Writer) (int64, error) {
	ct := NewChromeTrace()
	ct.mu.Lock()
	for _, te := range rt.Events() {
		ct.record(te.Event, te.TsUS)
	}
	ct.mu.Unlock()
	return ct.WriteTo(w)
}

// ---------------------------------------------------------------------------
// FlightRecorder: bounded ring of recent request summaries

// FlightEntry is one request's flight-recorder summary: identity, outcome,
// phase latencies, and the analysis dynamics the paper's tables are built
// from (steps, flushes, counterfactuals). The JSON shape is the
// /debug/statusz wire format.
type FlightEntry struct {
	TraceID   string    `json:"trace_id"`
	Route     string    `json:"route"`
	Start     time.Time `json:"start"`
	ElapsedUS int64     `json:"elapsed_us"`
	Status    int       `json:"status"`
	// Outcome is the terminal classification: ok, sound-partial,
	// quarantined, interrupted, shed, draining, or error.
	Outcome       string `json:"outcome"`
	DegradeReason string `json:"degrade_reason,omitempty"`
	ErrorKind     string `json:"error_kind,omitempty"`
	CacheHit      bool   `json:"cache_hit,omitempty"`
	// Peer names the cluster peer that actually served a relayed request
	// (empty for locally served ones).
	Peer string `json:"peer,omitempty"`

	// Tenant and Class identify the admitted request under the wfq and
	// priority scheduler policies; empty under fifo, where admission is
	// tenant-blind.
	Tenant string `json:"tenant,omitempty"`
	Class  string `json:"class,omitempty"`

	Steps           int `json:"steps,omitempty"`
	HeapFlushes     int `json:"heap_flushes,omitempty"`
	Counterfactuals int `json:"counterfactuals,omitempty"`
	Facts           int `json:"facts,omitempty"`
	Determinate     int `json:"determinate,omitempty"`

	Events        uint64      `json:"events,omitempty"`
	DroppedEvents uint64      `json:"dropped_events,omitempty"`
	Phases        []PhaseSpan `json:"phases,omitempty"`

	// ErrPhase/ErrInstr/ErrPos locate a quarantined panic (*RunError).
	ErrPhase string `json:"err_phase,omitempty"`
	ErrInstr int    `json:"err_instr,omitempty"`
	ErrPos   string `json:"err_pos,omitempty"`
}

// DefaultFlightEntries bounds the recorder when NewFlightRecorder is given
// a non-positive capacity.
const DefaultFlightEntries = 512

// FlightRecorder keeps the last N request summaries (and their retained
// event traces) in a ring. The cost per request is one short critical
// section at completion — nothing on the analysis hot path.
type FlightRecorder struct {
	mu    sync.Mutex
	cap   int
	ring  []flightSlot
	next  int // oldest slot once the ring is full
	total uint64
	byID  map[string]int
}

type flightSlot struct {
	entry FlightEntry
	trace *RequestTrace
}

// NewFlightRecorder creates a recorder holding up to capacity requests
// (DefaultFlightEntries when <= 0).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultFlightEntries
	}
	return &FlightRecorder{cap: capacity, byID: make(map[string]int)}
}

// Record stores one finished request. trace may be nil (tracing disabled);
// the summary is still recorded. Re-used trace IDs resolve to the newest
// recording.
func (f *FlightRecorder) Record(e FlightEntry, trace *RequestTrace) {
	f.mu.Lock()
	defer f.mu.Unlock()
	var idx int
	if len(f.ring) < f.cap {
		idx = len(f.ring)
		f.ring = append(f.ring, flightSlot{})
	} else {
		idx = f.next
		f.next++
		if f.next == f.cap {
			f.next = 0
		}
		if old := f.ring[idx].entry.TraceID; f.byID[old] == idx {
			delete(f.byID, old)
		}
	}
	f.ring[idx] = flightSlot{entry: e, trace: trace}
	f.byID[e.TraceID] = idx
	f.total++
}

// Entries returns the retained summaries newest-first.
func (f *FlightRecorder) Entries() []FlightEntry {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]FlightEntry, 0, len(f.ring))
	// Oldest-first ring order is ring[next:], ring[:next]; emit reversed.
	for i := f.next - 1; i >= 0; i-- {
		out = append(out, f.ring[i].entry)
	}
	for i := len(f.ring) - 1; i >= f.next; i-- {
		out = append(out, f.ring[i].entry)
	}
	return out
}

// Lookup finds a retained request by trace ID.
func (f *FlightRecorder) Lookup(id string) (FlightEntry, *RequestTrace, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	idx, ok := f.byID[id]
	if !ok {
		return FlightEntry{}, nil, false
	}
	return f.ring[idx].entry, f.ring[idx].trace, true
}

// Len reports how many requests are retained; Total how many were ever
// recorded.
func (f *FlightRecorder) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.ring)
}

func (f *FlightRecorder) Total() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.total
}
