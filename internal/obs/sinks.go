package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// ---------------------------------------------------------------------------
// Collector: ring-buffered in-memory sink

// Collector keeps the last capacity events in a ring buffer. It is the sink
// of choice for tests and for post-run summaries that only need recent
// history (e.g. "what flushed right before the budget ran out").
type Collector struct {
	mu    sync.Mutex
	buf   []Event
	next  int // index of the oldest event once the ring is full
	total uint64
}

// NewCollector creates a collector holding up to capacity events
// (4096 when capacity <= 0).
func NewCollector(capacity int) *Collector {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Collector{buf: make([]Event, 0, capacity)}
}

// Event implements Tracer.
func (c *Collector) Event(e Event) {
	c.mu.Lock()
	if len(c.buf) < cap(c.buf) {
		c.buf = append(c.buf, e)
	} else {
		c.buf[c.next] = e
		c.next++
		if c.next == len(c.buf) {
			c.next = 0
		}
	}
	c.total++
	c.mu.Unlock()
}

// Events returns the retained events oldest-first.
func (c *Collector) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Event, 0, len(c.buf))
	out = append(out, c.buf[c.next:]...)
	out = append(out, c.buf[:c.next]...)
	return out
}

// Total reports how many events were ever received.
func (c *Collector) Total() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

// Dropped reports how many events fell out of the ring.
func (c *Collector) Dropped() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total - uint64(len(c.buf))
}

// Count reports how many retained events have the given kind.
func (c *Collector) Count(k EventKind) int {
	n := 0
	for _, e := range c.Events() {
		if e.Kind == k {
			n++
		}
	}
	return n
}

// ---------------------------------------------------------------------------
// JSONLWriter: one JSON object per event

// jsonlEvent is the wire shape of one JSONL record.
type jsonlEvent struct {
	Seq    uint64 `json:"seq"`
	TsUS   int64  `json:"ts_us"`
	Kind   string `json:"ev"`
	Phase  string `json:"phase,omitempty"`
	Detail string `json:"detail,omitempty"`
	N1     int64  `json:"n1,omitempty"`
	N2     int64  `json:"n2,omitempty"`
	N3     int64  `json:"n3,omitempty"`
	N4     int64  `json:"n4,omitempty"`
}

// JSONLWriter streams events as JSON lines. Timestamps are microseconds
// since the writer was created. Write errors are sticky and surfaced by
// Err, keeping the Tracer interface allocation- and error-free at emission
// sites.
type JSONLWriter struct {
	mu    sync.Mutex
	enc   *json.Encoder
	start time.Time
	seq   uint64
	err   error
}

// NewJSONLWriter creates a JSONL sink writing to w.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	return &JSONLWriter{enc: json.NewEncoder(w), start: time.Now()}
}

// Event implements Tracer.
func (j *JSONLWriter) Event(e Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	rec := jsonlEvent{
		Seq:    j.seq,
		TsUS:   time.Since(j.start).Microseconds(),
		Kind:   e.Kind.String(),
		Phase:  e.Phase,
		Detail: e.Detail,
		N1:     e.N1, N2: e.N2, N3: e.N3, N4: e.N4,
	}
	j.seq++
	j.err = j.enc.Encode(rec)
}

// Err returns the first write error, if any.
func (j *JSONLWriter) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// ---------------------------------------------------------------------------
// ChromeTrace: trace_event JSON for Perfetto / about://tracing

// chromeRec is one trace_event record. Ph and Ts are always present — the
// loader requires them.
type chromeRec struct {
	Name string           `json:"name"`
	Ph   string           `json:"ph"`
	Ts   int64            `json:"ts"`
	Pid  int              `json:"pid"`
	Tid  int              `json:"tid"`
	S    string           `json:"s,omitempty"`
	Args map[string]int64 `json:"args,omitempty"`
}

// Thread lanes in the exported trace.
const (
	chromeTidPhases   = 1 // pipeline phases
	chromeTidBranches = 2 // indeterminate branches + counterfactuals
	chromeTidSolver   = 3 // points-to counters
)

// ChromeTrace buffers events and writes them as Chrome trace_event JSON
// ({"traceEvents": [...]}), loadable in Perfetto (ui.perfetto.dev) or
// chrome://tracing. Phases and counterfactual nesting become duration
// (B/E) slices; flushes, taints and evals become instant events;
// solver snapshots become counter tracks. Per-fact events are aggregated
// into a final counter rather than recorded individually (they are far too
// frequent to be useful as slices).
type ChromeTrace struct {
	mu          sync.Mutex
	start       time.Time
	recs        []chromeRec
	lastTS      int64
	factRecords int64
	factInvalid int64
}

// NewChromeTrace creates an empty Chrome-format sink.
func NewChromeTrace() *ChromeTrace {
	return &ChromeTrace{start: time.Now()}
}

// Event implements Tracer.
func (c *ChromeTrace) Event(e Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.record(e, time.Since(c.start).Microseconds())
}

// record converts one event stamped at ts (microseconds since trace
// start). Split from Event so a retained per-request trace can replay its
// events with their original timestamps (RequestTrace.WriteChromeTrace).
func (c *ChromeTrace) record(e Event, ts int64) {
	if ts > c.lastTS {
		c.lastTS = ts
	}
	switch e.Kind {
	case EvPhaseBegin, EvPhaseEnd:
		ph := "B"
		if e.Kind == EvPhaseEnd {
			ph = "E"
		}
		c.push(chromeRec{Name: e.Phase, Ph: ph, Ts: ts, Tid: chromeTidPhases})
	case EvBranchEnter, EvBranchExit:
		name := "indet-branch"
		if e.Detail == "loop" {
			name = "indet-loop"
		}
		ph := "B"
		if e.Kind == EvBranchExit {
			ph = "E"
		}
		c.push(chromeRec{Name: name, Ph: ph, Ts: ts, Tid: chromeTidBranches,
			Args: map[string]int64{"depth": e.N1}})
	case EvCFEnter, EvCFExit:
		ph := "B"
		if e.Kind == EvCFExit {
			ph = "E"
		}
		c.push(chromeRec{Name: "counterfactual", Ph: ph, Ts: ts, Tid: chromeTidBranches,
			Args: map[string]int64{"depth": e.N1}})
	case EvHeapFlush:
		c.push(chromeRec{Name: "flush:" + e.Phase, Ph: "i", S: "t", Ts: ts,
			Tid: chromeTidPhases, Args: map[string]int64{"epoch": e.N1, "total": e.N2}})
	case EvEnvFlush:
		c.push(chromeRec{Name: "env-flush", Ph: "i", S: "t", Ts: ts,
			Tid: chromeTidPhases, Args: map[string]int64{"epoch": e.N1}})
	case EvTaint:
		c.push(chromeRec{Name: "taint:" + e.Phase, Ph: "i", S: "t", Ts: ts,
			Tid: chromeTidBranches, Args: map[string]int64{"locations": e.N1}})
	case EvEval:
		c.push(chromeRec{Name: "eval:" + e.Detail, Ph: "i", S: "t", Ts: ts,
			Tid: chromeTidPhases, Args: map[string]int64{"srclen": e.N1}})
	case EvSolver:
		c.push(chromeRec{Name: "pointsto", Ph: "C", Ts: ts, Tid: chromeTidSolver,
			Args: map[string]int64{"work": e.N1, "worklist": e.N2, "nodes": e.N3, "objects": e.N4}})
	case EvGuard:
		c.push(chromeRec{Name: "guard:" + e.Phase + ":" + e.Detail, Ph: "i", S: "t", Ts: ts,
			Tid: chromeTidPhases})
	case EvCache:
		c.push(chromeRec{Name: "cache:" + e.Detail, Ph: "i", S: "t", Ts: ts,
			Tid: chromeTidPhases})
	case EvFactRecord:
		c.factRecords++
	case EvFactInvalidate:
		c.factInvalid++
	}
}

func (c *ChromeTrace) push(r chromeRec) {
	r.Pid = 1
	c.recs = append(c.recs, r)
}

// WriteTo writes the buffered trace as a single JSON document.
func (c *ChromeTrace) WriteTo(w io.Writer) (int64, error) {
	c.mu.Lock()
	recs := make([]chromeRec, len(c.recs))
	copy(recs, c.recs)
	ts := time.Since(c.start).Microseconds()
	if ts < c.lastTS {
		ts = c.lastTS // replayed traces: stay after the last replayed event
	}
	recs = append(recs, chromeRec{
		Name: "facts", Ph: "C", Ts: ts, Pid: 1, Tid: chromeTidSolver,
		Args: map[string]int64{"recorded": c.factRecords, "invalidated": c.factInvalid},
	})
	c.mu.Unlock()

	doc := struct {
		TraceEvents     []chromeRec `json:"traceEvents"`
		DisplayTimeUnit string      `json:"displayTimeUnit"`
	}{recs, "ms"}
	data, err := json.MarshalIndent(doc, "", " ")
	if err != nil {
		return 0, err
	}
	n, err := w.Write(data)
	if err != nil {
		return int64(n), err
	}
	m, err := fmt.Fprintln(w)
	return int64(n + m), err
}
