package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Metrics is a registry of named counters, gauges and histograms. Handles
// are get-or-create and safe for concurrent use; hot paths should hold on
// to the handle rather than re-looking it up by name.
//
// Names follow the Prometheus convention (snake_case, optional
// {label="value"} suffix); both dump formats sort by name, so output is
// deterministic regardless of registration order.
type Metrics struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	help     map[string]string
}

// NewMetrics creates an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		help:     map[string]string{},
	}
}

// Help registers a HELP line for a metric family. name may be a full metric
// name or its base (labels are stripped); the text is emitted once per
// family in WriteProm.
func (m *Metrics) Help(name, text string) {
	m.mu.Lock()
	m.help[baseName(name)] = text
	m.mu.Unlock()
}

// Counter returns the named counter, creating it at zero.
func (m *Metrics) Counter(name string) *Counter {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.counters[name]
	if !ok {
		c = &Counter{}
		m.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it at zero.
func (m *Metrics) Gauge(name string) *Gauge {
	m.mu.Lock()
	defer m.mu.Unlock()
	g, ok := m.gauges[name]
	if !ok {
		g = &Gauge{}
		m.gauges[name] = g
	}
	return g
}

// DefBuckets are the default histogram bucket upper bounds: a 1-2-5 decade
// ladder wide enough for both nesting depths and propagation counts.
var DefBuckets = []float64{1, 2, 5, 10, 20, 50, 100, 1000, 10000, 100000}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds (DefBuckets when none are given). Bounds are only applied on
// creation; later calls return the existing histogram unchanged.
func (m *Metrics) Histogram(name string, bounds ...float64) *Histogram {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.hists[name]
	if !ok {
		if len(bounds) == 0 {
			bounds = DefBuckets
		}
		bs := make([]float64, len(bounds))
		copy(bs, bounds)
		sort.Float64s(bs)
		h = &Histogram{bounds: bs, counts: make([]int64, len(bs)+1)}
		m.hists[name] = h
	}
	return h
}

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds d.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Value reads the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float metric that can move both ways.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// SetMax stores v if it exceeds the current value.
func (g *Gauge) SetMax(v float64) {
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value reads the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a bucketed distribution with cumulative Prometheus
// semantics: bucket i counts observations ≤ bounds[i], plus an implicit
// +Inf bucket.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []int64
	sum    float64
	n      int64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.n++
}

// Count reports the number of samples.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Sum reports the sample total.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// snapshot returns bounds and cumulative counts for dumping.
func (h *Histogram) snapshot() (bounds []float64, cum []int64, sum float64, n int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	bounds = h.bounds
	cum = make([]int64, len(h.counts))
	var acc int64
	for i, c := range h.counts {
		acc += c
		cum[i] = acc
	}
	return bounds, cum, h.sum, h.n
}

// ---------------------------------------------------------------------------
// Dumps

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// baseName strips a {label=...} suffix for TYPE comments.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// splitName separates a metric name into its base and the inner label
// list ("" when unlabeled): `req{route="/x"}` → `req`, `route="/x"`.
func splitName(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	return name[:i], strings.TrimSuffix(name[i+1:], "}")
}

// promEscape renders a raw label value with exactly the three escapes the
// text exposition format defines: backslash, double quote, and line feed.
// Every other byte — tabs, control characters, non-ASCII — passes through
// raw, which the format allows.
func promEscape(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// normalizeLabelValues rewrites each label value in a `k="v",...` list
// with promEscape. Metric names are built with %q, whose Go quoting
// escapes more than the exposition format allows (\t, \xNN, \uNNNN …); a
// hostile value — a tenant ID with a tab, say — would otherwise render a
// page strict scrapers reject. Well-formed values round-trip unchanged,
// so existing pages stay byte-identical.
func normalizeLabelValues(labels string) string {
	var b strings.Builder
	for i := 0; i < len(labels); {
		eq := strings.IndexByte(labels[i:], '=')
		if eq < 0 || i+eq+1 >= len(labels) || labels[i+eq+1] != '"' {
			b.WriteString(labels[i:]) // malformed; emit as-is
			break
		}
		b.WriteString(labels[i : i+eq+1])
		i += eq + 1
		j := i + 1 // scan the Go-quoted value
		for j < len(labels) && labels[j] != '"' {
			if labels[j] == '\\' {
				j++
			}
			j++
		}
		if j >= len(labels) {
			b.WriteString(labels[i:]) // unterminated; emit as-is
			break
		}
		quoted := labels[i : j+1]
		if v, err := strconv.Unquote(quoted); err == nil {
			b.WriteByte('"')
			b.WriteString(promEscape(v))
			b.WriteByte('"')
		} else {
			b.WriteString(quoted)
		}
		i = j + 1
		if i < len(labels) && labels[i] == ',' {
			b.WriteByte(',')
			i++
		}
	}
	return b.String()
}

// promName renders a metric name for the exposition page, with its label
// values normalized.
func promName(name string) string {
	if !strings.HasSuffix(name, "}") {
		return name
	}
	base, labels := splitName(name)
	if labels == "" {
		return name
	}
	return base + "{" + normalizeLabelValues(labels) + "}"
}

// WriteProm writes a Prometheus-style text dump, sorted by metric name so
// the output is byte-for-byte deterministic. HELP and TYPE comments are
// emitted once per metric family; histogram label sets are spliced into
// the derived _bucket/_sum/_count series so labeled histograms render as
// valid exposition-format families.
func (m *Metrics) WriteProm(w io.Writer) error {
	m.mu.Lock()
	cnames := sortedKeys(m.counters)
	gnames := sortedKeys(m.gauges)
	hnames := sortedKeys(m.hists)
	counters, gauges, hists := m.counters, m.gauges, m.hists
	help := make(map[string]string, len(m.help))
	for k, v := range m.help {
		help[k] = v
	}
	m.mu.Unlock()

	var b strings.Builder
	header := func(base, typ string, last *string) {
		if base == *last {
			return
		}
		*last = base
		if h, ok := help[base]; ok {
			fmt.Fprintf(&b, "# HELP %s %s\n", base, h)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", base, typ)
	}
	lastFamily := ""
	for _, n := range cnames {
		header(baseName(n), "counter", &lastFamily)
		fmt.Fprintf(&b, "%s %d\n", promName(n), counters[n].Value())
	}
	lastFamily = ""
	for _, n := range gnames {
		header(baseName(n), "gauge", &lastFamily)
		fmt.Fprintf(&b, "%s %s\n", promName(n), formatFloat(gauges[n].Value()))
	}
	lastFamily = ""
	for _, n := range hnames {
		base, labels := splitName(n)
		if labels != "" {
			labels = normalizeLabelValues(labels)
		}
		sep := ""
		if labels != "" {
			sep = ","
		}
		bounds, cum, sum, count := hists[n].snapshot()
		header(base, "histogram", &lastFamily)
		for i, ub := range bounds {
			fmt.Fprintf(&b, "%s_bucket{%s%sle=%q} %d\n", base, labels, sep, formatFloat(ub), cum[i])
		}
		fmt.Fprintf(&b, "%s_bucket{%s%sle=\"+Inf\"} %d\n", base, labels, sep, cum[len(cum)-1])
		if labels == "" {
			fmt.Fprintf(&b, "%s_sum %s\n", base, formatFloat(sum))
			fmt.Fprintf(&b, "%s_count %d\n", base, count)
		} else {
			fmt.Fprintf(&b, "%s_sum{%s} %s\n", base, labels, formatFloat(sum))
			fmt.Fprintf(&b, "%s_count{%s} %d\n", base, labels, count)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// histJSON is the JSON shape of one histogram.
type histJSON struct {
	Count   int64   `json:"count"`
	Sum     float64 `json:"sum"`
	Bounds  []float64
	Buckets []int64
}

// MarshalJSON renders buckets as ordered {le, n} pairs; the implicit +Inf
// bound is encoded as the string "+Inf" (JSON has no infinity literal).
func (h histJSON) MarshalJSON() ([]byte, error) {
	type bucket struct {
		LE any   `json:"le"`
		N  int64 `json:"n"`
	}
	out := struct {
		Count   int64    `json:"count"`
		Sum     float64  `json:"sum"`
		Buckets []bucket `json:"buckets"`
	}{Count: h.Count, Sum: h.Sum, Buckets: make([]bucket, 0, len(h.Bounds)+1)}
	for i, ub := range h.Bounds {
		out.Buckets = append(out.Buckets, bucket{LE: ub, N: h.Buckets[i]})
	}
	out.Buckets = append(out.Buckets, bucket{LE: "+Inf", N: h.Buckets[len(h.Buckets)-1]})
	return json.Marshal(out)
}

// WriteJSON writes the registry as one JSON object. encoding/json sorts map
// keys, so the output is deterministic.
func (m *Metrics) WriteJSON(w io.Writer) error {
	m.mu.Lock()
	counters := make(map[string]int64, len(m.counters))
	for n, c := range m.counters {
		counters[n] = c.Value()
	}
	gauges := make(map[string]float64, len(m.gauges))
	for n, g := range m.gauges {
		gauges[n] = g.Value()
	}
	hists := make(map[string]histJSON, len(m.hists))
	for n, h := range m.hists {
		bounds, cum, sum, count := h.snapshot()
		hists[n] = histJSON{Count: count, Sum: sum, Bounds: bounds, Buckets: cum}
	}
	m.mu.Unlock()

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Counters   map[string]int64    `json:"counters"`
		Gauges     map[string]float64  `json:"gauges"`
		Histograms map[string]histJSON `json:"histograms"`
	}{counters, gauges, hists})
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
