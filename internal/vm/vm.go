// Package vm compiles the structured IR into a compact register bytecode
// executed by both interpreters' dispatch loops. The compiler runs once per
// module (under the progcache's singleflight for shared modules), attaches a
// *Code to every ir.Block, and records per-function metadata (*Info) that
// the instrumented engine uses for dense occurrence tracking and inline
// caches. Blocks without attached code fall back to tree walking, so a
// partially compiled module is always executable. See DESIGN.md for the
// bytecode layout and the inline-cache protocol.
package vm

import (
	"fmt"

	"determinacy/internal/ir"
)

// Engine selects the execution engine for a run.
type Engine string

// Engines. The zero value selects bytecode: compiled dispatch is the
// default; tree walking remains available as the reference semantics.
const (
	EngineDefault  Engine = ""
	EngineTree     Engine = "tree"
	EngineBytecode Engine = "bytecode"
)

// Bytecode reports whether the engine executes compiled blocks.
func (e Engine) Bytecode() bool { return e != EngineTree }

// String renders the effective engine name.
func (e Engine) String() string {
	if e == EngineDefault {
		return string(EngineBytecode)
	}
	return string(e)
}

// ParseEngine validates a user-supplied engine name ("" = default).
func ParseEngine(s string) (Engine, error) {
	switch Engine(s) {
	case EngineDefault, EngineTree, EngineBytecode:
		return Engine(s), nil
	}
	return EngineDefault, fmt.Errorf("unknown engine %q (want tree or bytecode)", s)
}

// Op is a bytecode opcode.
type Op uint8

// Opcodes. Straight-line ops carry decoded operands in A/B/C so the
// dispatch loops read registers without re-asserting instruction types;
// control flow and rare ops delegate to the engines' tree handlers through
// Ins.Src. OpLoadVarField and OpConstBin are superinstructions fusing the
// dominant adjacent pairs (see DESIGN.md for selection data).
const (
	// OpOther delegates the instruction to the engine's tree handler.
	OpOther Op = iota
	OpConst
	OpMove
	OpLoadVar
	OpStoreVar
	OpLoadGlobal
	OpStoreGlobal
	OpGetField
	OpGetProp
	OpSetField
	OpSetProp
	OpBinOp
	OpUnOp
	OpIf
	OpReturn
	OpThrow
	OpBreak
	OpContinue
	// OpLoadVarField fuses LoadVar+GetField (`x.f`): the loaded variable is
	// immediately the property-read receiver.
	OpLoadVarField
	// OpConstBin fuses Const+BinOp where the constant is the right operand
	// (`i < 10`, `n + 1`).
	OpConstBin
)

// NoIC marks an instruction without an inline-cache site.
const NoIC int32 = -1

// Ins is one decoded bytecode instruction. Operand meaning by opcode:
//
//	OpConst:       A=dst (literal via Src)
//	OpMove:        A=dst B=src
//	OpLoadVar:     A=dst B=hops C=slot
//	OpStoreVar:    A=src B=hops C=slot
//	OpLoadGlobal:  A=dst C=1 if for-typeof; Name
//	OpStoreGlobal: A=src; Name
//	OpGetField:    A=dst B=obj; Name; Site
//	OpGetProp:     A=dst B=obj C=prop
//	OpSetField:    A=obj B=src; Name; Site
//	OpSetProp:     A=obj B=prop C=src
//	OpBinOp:       A=dst B=l C=r; Name=operator
//	OpUnOp:        A=dst B=x; Name=operator
//	OpIf:          A=cond (blocks via Src)
//	OpReturn:      A=src register or -1
//	OpThrow:       A=src
//	OpLoadVarField: LoadVar A=dst B=hops C=slot, then GetField B2=dst
//	                (receiver = A); Name; Site; Src2=the GetField
//	OpConstBin:    Const A=dst, then BinOp B2=dst C2=l, r=A; Name; Src2
//
// Src always points at the originating IR instruction (the program point for
// facts, tracing, and tree fallback); Src2 at the fused second instruction.
type Ins struct {
	Op        Op
	A, B, C   int32
	B2, C2    int32
	Site      int32
	Name      string
	Src, Src2 ir.Instr
}

// Code is a compiled block.
type Code struct {
	Ins []Ins
}

// FnInfo is per-function compilation metadata: a dense index over the
// function's instruction IDs, used by the instrumented engine to replace
// per-frame occurrence maps with flat slices.
type FnInfo struct {
	minID, maxID ir.ID
	slots        []int32 // id-minID -> dense index, -1 for foreign IDs
	n            int
}

// Slot maps an instruction ID to its dense per-function index, or -1 when
// the ID does not belong to this function (e.g. runtime-lowered eval code).
func (fi *FnInfo) Slot(id ir.ID) int32 {
	if fi == nil || id < fi.minID || id > fi.maxID {
		return -1
	}
	return fi.slots[id-fi.minID]
}

// NumSlots is the number of dense indices (instructions of the function).
func (fi *FnInfo) NumSlots() int { return fi.n }

// Info is module-level compilation metadata, shared read-only by every
// module clone.
type Info struct {
	// NumICs is the number of inline-cache sites allocated to static code;
	// runtime-lowered eval code numbers its sites from here per run.
	NumICs int
	// Fns maps each compiled function to its metadata.
	Fns map[*ir.Function]*FnInfo
}

// InfoOf returns the module's compilation metadata, or nil when the module
// has not been compiled.
func InfoOf(mod *ir.Module) *Info {
	if info, ok := mod.VMInfo.(*Info); ok {
		return info
	}
	return nil
}

// CodeOf returns a block's compiled code, or nil.
func CodeOf(b *ir.Block) *Code {
	if c, ok := b.Code.(*Code); ok {
		return c
	}
	return nil
}
