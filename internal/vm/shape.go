package vm

// Shape is a hidden class describing an object's own-property key sequence.
// Objects that gained the same keys in the same order share one Shape, so an
// inline cache validates a whole property lookup with a single pointer
// comparison. Shapes form a transition tree rooted per run: adding key k to
// an object with shape s moves it to the unique child s.Transition(k).
//
// The instrumented engine maintains the invariant that a shaped object's own
// keys are exactly the shape's path from the root, with no phantom cells, no
// accessors, and untouched key order: any operation that would break that —
// deletes, counterfactual undo, phantom installation, key-order restoration,
// accessor definition — drops the object to dictionary mode (nil shape)
// instead of transitioning. Shapes are not synchronized; each analysis run
// owns a private root.
type Shape struct {
	parent   *Shape
	key      string
	depth    int
	children map[string]*Shape
}

// NewRootShape creates the empty-object shape for one run's transition tree.
func NewRootShape() *Shape { return &Shape{} }

// Transition returns the shape for this shape's key set extended by key,
// creating (and caching) it on first use. The caller guarantees key is not
// already present. A shape is just a link to its parent: transitions are
// O(1) and a chain of n keys costs n small nodes, not n cloned key tables
// (Has runs only on the inline caches' cold priming path, where a chain
// walk is cheap).
func (s *Shape) Transition(key string) *Shape {
	if c, ok := s.children[key]; ok {
		return c
	}
	c := &Shape{parent: s, key: key, depth: s.depth + 1}
	if s.children == nil {
		s.children = make(map[string]*Shape, 1)
	}
	s.children[key] = c
	return c
}

// Has reports whether key is in the shape's key set.
func (s *Shape) Has(key string) bool {
	for c := s; c.parent != nil; c = c.parent {
		if c.key == key {
			return true
		}
	}
	return false
}

// Len is the number of own keys the shape describes.
func (s *Shape) Len() int { return s.depth }
