package vm

import (
	"sync"

	"determinacy/internal/ir"
)

// ensureMu serializes first-time compilation. Compilation attaches code to
// blocks that every clone of a module shares, so two goroutines ensuring
// sibling clones of a never-compiled master would race on the same
// *ir.Block.Code fields without it. Compilation happens once per distinct
// program, so a single package lock is contention-free in practice.
var ensureMu sync.Mutex

// Ensure compiles mod's functions to bytecode exactly once per clone
// family, attaching code to the shared blocks and metadata to this module,
// and returns the metadata. It is safe to call concurrently on sibling
// clones of one master: the first caller compiles under ensureMu, later
// callers (and callers on clones of an already-compiled master) find the
// shared blocks populated and only rebuild the cheap per-function indexes.
// Ensure on a module that already carries metadata is a lock-free no-op —
// the caller must have obtained the clone through a synchronizing handoff
// (the progcache singleflight, or plain single-goroutine creation), which
// orders the compile before the read.
func Ensure(mod *ir.Module) *Info {
	if info := InfoOf(mod); info != nil {
		return info
	}
	ensureMu.Lock()
	defer ensureMu.Unlock()
	info := &Info{Fns: make(map[*ir.Function]*FnInfo, len(mod.Funcs))}
	if top := mod.Top(); top.Body != nil && CodeOf(top.Body) != nil {
		// A sibling clone compiled the shared blocks already (a completed
		// Ensure attaches code to every block, top level included, before
		// releasing ensureMu — there is no partially-compiled state to
		// observe here). Recover this clone's metadata without touching the
		// attached code: the index computation is a pure function of the
		// immutable instruction IDs, and the IC site count is read back off
		// the numbered sites.
		maxSite := int32(NoIC)
		for _, fn := range mod.Funcs {
			c := &fnCompiler{}
			c.scanBlock(fn.Body)
			info.Fns[fn] = c.finishIndex()
			if s := maxSiteIn(fn.Body); s > maxSite {
				maxSite = s
			}
		}
		info.NumICs = int(maxSite + 1)
	} else {
		ics := 0
		for _, fn := range mod.Funcs {
			info.Fns[fn] = CompileFunc(fn, &ics)
		}
		info.NumICs = ics
	}
	mod.VMInfo = info
	return info
}

// maxSiteIn returns the largest inline-cache site number in a compiled
// block tree (NoIC when it has none).
func maxSiteIn(b *ir.Block) int32 {
	maxSite := NoIC
	if b == nil {
		return maxSite
	}
	code := CodeOf(b)
	if code == nil {
		return maxSite
	}
	for _, in := range code.Ins {
		if in.Site > maxSite {
			maxSite = in.Site
		}
	}
	for _, in := range b.Instrs {
		switch in := in.(type) {
		case *ir.If:
			for _, c := range []*ir.Block{in.Then, in.Else} {
				if s := maxSiteIn(c); s > maxSite {
					maxSite = s
				}
			}
		case *ir.While:
			for _, c := range []*ir.Block{in.CondBlock, in.Body, in.Update} {
				if s := maxSiteIn(c); s > maxSite {
					maxSite = s
				}
			}
		case *ir.ForIn:
			if s := maxSiteIn(in.Body); s > maxSite {
				maxSite = s
			}
		case *ir.Try:
			for _, c := range []*ir.Block{in.Body, in.Catch, in.Finally} {
				if s := maxSiteIn(c); s > maxSite {
					maxSite = s
				}
			}
		}
	}
	return maxSite
}

// CompileFunc compiles one function's blocks, numbering inline-cache sites
// from *ics (advanced past the sites allocated). The instrumented engine
// uses it directly for runtime-lowered eval functions, numbering their
// sites from a run-local counter.
func CompileFunc(fn *ir.Function, ics *int) *FnInfo {
	c := &fnCompiler{ics: ics}
	c.scanBlock(fn.Body)
	fi := c.finishIndex()
	c.compileBlock(fn.Body)
	return fi
}

type fnCompiler struct {
	ics *int
	ids []ir.ID
}

// scanBlock collects the function's instruction IDs (not recursing into
// nested function literals, which compile separately).
func (c *fnCompiler) scanBlock(b *ir.Block) {
	if b == nil {
		return
	}
	for _, in := range b.Instrs {
		c.ids = append(c.ids, in.IID())
		switch in := in.(type) {
		case *ir.If:
			c.scanBlock(in.Then)
			c.scanBlock(in.Else)
		case *ir.While:
			c.scanBlock(in.CondBlock)
			c.scanBlock(in.Body)
			c.scanBlock(in.Update)
		case *ir.ForIn:
			c.scanBlock(in.Body)
		case *ir.Try:
			c.scanBlock(in.Body)
			c.scanBlock(in.Catch)
			c.scanBlock(in.Finally)
		}
	}
}

func (c *fnCompiler) finishIndex() *FnInfo {
	fi := &FnInfo{}
	if len(c.ids) == 0 {
		return fi
	}
	fi.minID, fi.maxID = c.ids[0], c.ids[0]
	for _, id := range c.ids {
		if id < fi.minID {
			fi.minID = id
		}
		if id > fi.maxID {
			fi.maxID = id
		}
	}
	fi.slots = make([]int32, fi.maxID-fi.minID+1)
	for i := range fi.slots {
		fi.slots[i] = -1
	}
	for _, id := range c.ids {
		if fi.slots[id-fi.minID] == -1 {
			fi.slots[id-fi.minID] = int32(fi.n)
			fi.n++
		}
	}
	return fi
}

// compileBlock lowers one block to bytecode and recurses into nested
// control-flow blocks (which execute through their own attached code).
func (c *fnCompiler) compileBlock(b *ir.Block) {
	if b == nil || b.Code != nil {
		return
	}
	code := &Code{Ins: make([]Ins, 0, len(b.Instrs))}
	for i := 0; i < len(b.Instrs); i++ {
		in := b.Instrs[i]
		// Superinstruction fusion over adjacent pairs. The fused handler
		// still performs both instructions' full effects (register writes,
		// fact recording, step accounting), so fusion never changes
		// semantics — only dispatch count.
		if i+1 < len(b.Instrs) {
			switch first := in.(type) {
			case *ir.LoadVar:
				if gf, ok := b.Instrs[i+1].(*ir.GetField); ok && gf.Obj == first.Dst {
					code.Ins = append(code.Ins, Ins{
						Op: OpLoadVarField,
						A:  int32(first.Dst), B: int32(first.Var.Hops), C: int32(first.Var.Slot),
						B2: int32(gf.Dst), Name: gf.Name, Site: c.nextIC(),
						Src: first, Src2: gf,
					})
					i++
					continue
				}
			case *ir.Const:
				if bin, ok := b.Instrs[i+1].(*ir.BinOp); ok && bin.R == first.Dst {
					code.Ins = append(code.Ins, Ins{
						Op: OpConstBin,
						A:  int32(first.Dst),
						B2: int32(bin.Dst), C2: int32(bin.L), Name: bin.Op, Site: NoIC,
						Src: first, Src2: bin,
					})
					i++
					continue
				}
			}
		}
		code.Ins = append(code.Ins, c.compileIns(in))
	}
	b.Code = code
}

func (c *fnCompiler) compileIns(in ir.Instr) Ins {
	switch in := in.(type) {
	case *ir.Const:
		return Ins{Op: OpConst, A: int32(in.Dst), Site: NoIC, Src: in}
	case *ir.Move:
		return Ins{Op: OpMove, A: int32(in.Dst), B: int32(in.Src), Site: NoIC, Src: in}
	case *ir.LoadVar:
		return Ins{Op: OpLoadVar, A: int32(in.Dst), B: int32(in.Var.Hops), C: int32(in.Var.Slot), Site: NoIC, Src: in}
	case *ir.StoreVar:
		return Ins{Op: OpStoreVar, A: int32(in.Src), B: int32(in.Var.Hops), C: int32(in.Var.Slot), Site: NoIC, Src: in}
	case *ir.LoadGlobal:
		forTypeof := int32(0)
		if in.ForTypeof {
			forTypeof = 1
		}
		return Ins{Op: OpLoadGlobal, A: int32(in.Dst), C: forTypeof, Name: in.Name, Site: NoIC, Src: in}
	case *ir.StoreGlobal:
		return Ins{Op: OpStoreGlobal, A: int32(in.Src), Name: in.Name, Site: NoIC, Src: in}
	case *ir.GetField:
		return Ins{Op: OpGetField, A: int32(in.Dst), B: int32(in.Obj), Name: in.Name, Site: c.nextIC(), Src: in}
	case *ir.GetProp:
		return Ins{Op: OpGetProp, A: int32(in.Dst), B: int32(in.Obj), C: int32(in.Prop), Site: NoIC, Src: in}
	case *ir.SetField:
		return Ins{Op: OpSetField, A: int32(in.Obj), B: int32(in.Src), Name: in.Name, Site: c.nextIC(), Src: in}
	case *ir.SetProp:
		return Ins{Op: OpSetProp, A: int32(in.Obj), B: int32(in.Prop), C: int32(in.Src), Site: NoIC, Src: in}
	case *ir.BinOp:
		return Ins{Op: OpBinOp, A: int32(in.Dst), B: int32(in.L), C: int32(in.R), Name: in.Op, Site: NoIC, Src: in}
	case *ir.UnOp:
		return Ins{Op: OpUnOp, A: int32(in.Dst), B: int32(in.X), Name: in.Op, Site: NoIC, Src: in}
	case *ir.If:
		c.compileBlock(in.Then)
		c.compileBlock(in.Else)
		return Ins{Op: OpIf, A: int32(in.Cond), Site: NoIC, Src: in}
	case *ir.While:
		c.compileBlock(in.CondBlock)
		c.compileBlock(in.Body)
		c.compileBlock(in.Update)
		return Ins{Op: OpOther, Site: NoIC, Src: in}
	case *ir.ForIn:
		c.compileBlock(in.Body)
		return Ins{Op: OpOther, Site: NoIC, Src: in}
	case *ir.Try:
		c.compileBlock(in.Body)
		c.compileBlock(in.Catch)
		c.compileBlock(in.Finally)
		return Ins{Op: OpOther, Site: NoIC, Src: in}
	case *ir.Return:
		return Ins{Op: OpReturn, A: int32(in.Src), Site: NoIC, Src: in}
	case *ir.Throw:
		return Ins{Op: OpThrow, A: int32(in.Src), Site: NoIC, Src: in}
	case *ir.Break:
		return Ins{Op: OpBreak, Site: NoIC, Src: in}
	case *ir.Continue:
		return Ins{Op: OpContinue, Site: NoIC, Src: in}
	default:
		// Call, New, MakeClosure, MakeObject, MakeArray, DelField, DelProp:
		// delegated whole to the engine's tree handler.
		return Ins{Op: OpOther, Site: NoIC, Src: in}
	}
}

func (c *fnCompiler) nextIC() int32 {
	s := int32(*c.ics)
	*c.ics++
	return s
}
