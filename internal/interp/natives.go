package interp

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// setupRuntime builds the global object, the built-in prototypes, and the
// standard library. The library covers what the paper's examples and case
// studies exercise; internal/core mirrors it with determinacy models.
func (it *Interp) setupRuntime() {
	// Prototypes first; their Data field carries protoMarker so their
	// properties are treated as non-enumerable by for-in.
	it.ObjectProto = &Obj{Class: "Object", Data: protoMarker}
	it.FunctionProto = &Obj{Class: "Object", Proto: it.ObjectProto, Data: protoMarker}
	it.ArrayProto = &Obj{Class: "Object", Proto: it.ObjectProto, Data: protoMarker}
	it.StringProto = &Obj{Class: "Object", Proto: it.ObjectProto, Data: protoMarker}
	it.NumberProto = &Obj{Class: "Object", Proto: it.ObjectProto, Data: protoMarker}
	it.BooleanProto = &Obj{Class: "Object", Proto: it.ObjectProto, Data: protoMarker}
	it.ErrorProto = &Obj{Class: "Object", Proto: it.ObjectProto, Data: protoMarker}

	g := it.NewObject(it.ObjectProto)
	it.Global = g
	g.Set("globalThis", ObjVal(g))
	g.Set("undefined", UndefinedVal)
	g.Set("NaN", NumberVal(math.NaN()))
	g.Set("Infinity", NumberVal(math.Inf(1)))

	it.setupConsole(g)
	it.setupMath(g)
	it.setupObject(g)
	it.setupFunction(g)
	it.setupArray(g)
	it.setupString(g)
	it.setupNumberBoolean(g)
	it.setupErrors(g)
	it.setupTopLevelFuncs(g)
}

func (it *Interp) def(o *Obj, name string, fn NativeFunc) {
	o.Set(name, ObjVal(it.NewNative(name, fn)))
}

func arg(args []Value, i int) Value {
	if i < len(args) {
		return args[i]
	}
	return UndefinedVal
}

func (it *Interp) setupConsole(g *Obj) {
	console := it.NewPlain()
	log := func(i *Interp, this Value, args []Value) (Value, error) {
		fmt.Fprintln(i.Out(), FormatArgs(args))
		return UndefinedVal, nil
	}
	it.def(console, "log", log)
	it.def(console, "warn", log)
	it.def(console, "error", log)
	it.def(console, "info", log)
	g.Set("console", ObjVal(console))
	// alert, as used in the paper's Figure 3.
	it.def(g, "alert", log)
	it.def(g, "print", log)
}

func (it *Interp) setupMath(g *Obj) {
	m := it.NewPlain()
	num1 := func(f func(float64) float64) NativeFunc {
		return func(i *Interp, this Value, args []Value) (Value, error) {
			return NumberVal(f(ToNumber(arg(args, 0)))), nil
		}
	}
	it.def(m, "abs", num1(math.Abs))
	it.def(m, "floor", num1(math.Floor))
	it.def(m, "ceil", num1(math.Ceil))
	it.def(m, "sqrt", num1(math.Sqrt))
	it.def(m, "sin", num1(math.Sin))
	it.def(m, "cos", num1(math.Cos))
	it.def(m, "log", num1(math.Log))
	it.def(m, "exp", num1(math.Exp))
	it.def(m, "round", num1(func(x float64) float64 { return math.Floor(x + 0.5) }))
	it.def(m, "pow", func(i *Interp, this Value, args []Value) (Value, error) {
		return NumberVal(math.Pow(ToNumber(arg(args, 0)), ToNumber(arg(args, 1)))), nil
	})
	it.def(m, "min", func(i *Interp, this Value, args []Value) (Value, error) {
		r := math.Inf(1)
		for _, a := range args {
			n := ToNumber(a)
			if math.IsNaN(n) {
				return NumberVal(math.NaN()), nil
			}
			r = math.Min(r, n)
		}
		return NumberVal(r), nil
	})
	it.def(m, "max", func(i *Interp, this Value, args []Value) (Value, error) {
		r := math.Inf(-1)
		for _, a := range args {
			n := ToNumber(a)
			if math.IsNaN(n) {
				return NumberVal(math.NaN()), nil
			}
			r = math.Max(r, n)
		}
		return NumberVal(r), nil
	})
	it.def(m, "random", func(i *Interp, this Value, args []Value) (Value, error) {
		return NumberVal(i.Random()), nil
	})
	m.Set("PI", NumberVal(math.Pi))
	m.Set("E", NumberVal(math.E))
	g.Set("Math", ObjVal(m))
}

func (it *Interp) setupObject(g *Obj) {
	objectCtor := it.NewNative("Object", func(i *Interp, this Value, args []Value) (Value, error) {
		a := arg(args, 0)
		if a.Kind == Object {
			return a, nil
		}
		return ObjVal(i.NewPlain()), nil
	})
	objectCtor.Set("prototype", ObjVal(it.ObjectProto))
	it.def(objectCtor, "keys", func(i *Interp, this Value, args []Value) (Value, error) {
		a := arg(args, 0)
		if a.Kind != Object {
			return UndefinedVal, &Thrown{Val: ObjVal(i.NewError("TypeError", "Object.keys requires an object"))}
		}
		keys := a.O.OwnKeys()
		elems := make([]Value, 0, len(keys))
		for _, k := range keys {
			if a.O.Class == "Array" && k == "length" {
				continue
			}
			elems = append(elems, StringVal(k))
		}
		return ObjVal(i.NewArray(elems)), nil
	})
	it.def(objectCtor, "getPrototypeOf", func(i *Interp, this Value, args []Value) (Value, error) {
		a := arg(args, 0)
		if a.Kind != Object || a.O.Proto == nil {
			return NullVal, nil
		}
		return ObjVal(a.O.Proto), nil
	})
	it.def(objectCtor, "create", func(i *Interp, this Value, args []Value) (Value, error) {
		a := arg(args, 0)
		var proto *Obj
		if a.Kind == Object {
			proto = a.O
		}
		return ObjVal(i.NewObject(proto)), nil
	})
	g.Set("Object", ObjVal(objectCtor))

	it.def(it.ObjectProto, "hasOwnProperty", func(i *Interp, this Value, args []Value) (Value, error) {
		if this.Kind != Object {
			return FalseVal, nil
		}
		_, ok := this.O.Get(ToString(arg(args, 0)))
		return BoolVal(ok), nil
	})
	it.def(it.ObjectProto, "toString", func(i *Interp, this Value, args []Value) (Value, error) {
		return StringVal(ToString(this)), nil
	})
}

func (it *Interp) setupFunction(g *Obj) {
	fnCtor := it.NewNative("Function", func(i *Interp, this Value, args []Value) (Value, error) {
		return UndefinedVal, &Thrown{Val: ObjVal(i.NewError("TypeError", "the Function constructor is not supported; use eval"))}
	})
	fnCtor.Set("prototype", ObjVal(it.FunctionProto))
	g.Set("Function", ObjVal(fnCtor))

	it.def(it.FunctionProto, "call", func(i *Interp, this Value, args []Value) (Value, error) {
		rest := args
		if len(rest) > 0 {
			rest = rest[1:]
		}
		return i.CallFunction(this, arg(args, 0), rest)
	})
	it.def(it.FunctionProto, "apply", func(i *Interp, this Value, args []Value) (Value, error) {
		var rest []Value
		if a := arg(args, 1); a.Kind == Object {
			n := a.O.ArrayLength()
			for k := 0; k < n; k++ {
				el, _ := a.O.Get(strconv.Itoa(k))
				rest = append(rest, el)
			}
		}
		return i.CallFunction(this, arg(args, 0), rest)
	})
}

func (it *Interp) setupArray(g *Obj) {
	arrayCtor := it.NewNative("Array", func(i *Interp, this Value, args []Value) (Value, error) {
		if len(args) == 1 && args[0].Kind == Number {
			a := i.NewArray(nil)
			a.Set("length", args[0])
			return ObjVal(a), nil
		}
		return ObjVal(i.NewArray(args)), nil
	})
	arrayCtor.Set("prototype", ObjVal(it.ArrayProto))
	it.def(arrayCtor, "isArray", func(i *Interp, this Value, args []Value) (Value, error) {
		a := arg(args, 0)
		return BoolVal(a.Kind == Object && a.O.Class == "Array"), nil
	})
	g.Set("Array", ObjVal(arrayCtor))

	p := it.ArrayProto
	it.def(p, "push", func(i *Interp, this Value, args []Value) (Value, error) {
		if this.Kind != Object {
			return UndefinedVal, nil
		}
		n := this.O.ArrayLength()
		for _, a := range args {
			this.O.Set(strconv.Itoa(n), a)
			n++
		}
		this.O.Set("length", NumberVal(float64(n)))
		return NumberVal(float64(n)), nil
	})
	it.def(p, "pop", func(i *Interp, this Value, args []Value) (Value, error) {
		if this.Kind != Object {
			return UndefinedVal, nil
		}
		n := this.O.ArrayLength()
		if n == 0 {
			return UndefinedVal, nil
		}
		v, _ := this.O.Get(strconv.Itoa(n - 1))
		this.O.Delete(strconv.Itoa(n - 1))
		this.O.Set("length", NumberVal(float64(n-1)))
		return v, nil
	})
	it.def(p, "shift", func(i *Interp, this Value, args []Value) (Value, error) {
		if this.Kind != Object {
			return UndefinedVal, nil
		}
		n := this.O.ArrayLength()
		if n == 0 {
			return UndefinedVal, nil
		}
		first, _ := this.O.Get("0")
		for k := 1; k < n; k++ {
			v, ok := this.O.Get(strconv.Itoa(k))
			if ok {
				this.O.Set(strconv.Itoa(k-1), v)
			} else {
				this.O.Delete(strconv.Itoa(k - 1))
			}
		}
		this.O.Delete(strconv.Itoa(n - 1))
		this.O.Set("length", NumberVal(float64(n-1)))
		return first, nil
	})
	it.def(p, "join", func(i *Interp, this Value, args []Value) (Value, error) {
		sep := ","
		if a := arg(args, 0); a.Kind != Undefined {
			sep = ToString(a)
		}
		if this.Kind != Object {
			return StringVal(""), nil
		}
		n := this.O.ArrayLength()
		parts := make([]string, 0, n)
		for k := 0; k < n; k++ {
			el, ok := this.O.Get(strconv.Itoa(k))
			if !ok || el.Kind == Undefined || el.Kind == Null {
				parts = append(parts, "")
			} else {
				parts = append(parts, ToString(el))
			}
		}
		return StringVal(strings.Join(parts, sep)), nil
	})
	it.def(p, "indexOf", func(i *Interp, this Value, args []Value) (Value, error) {
		if this.Kind != Object {
			return NumberVal(-1), nil
		}
		n := this.O.ArrayLength()
		target := arg(args, 0)
		for k := 0; k < n; k++ {
			el, _ := this.O.Get(strconv.Itoa(k))
			if StrictEquals(el, target) {
				return NumberVal(float64(k)), nil
			}
		}
		return NumberVal(-1), nil
	})
	it.def(p, "slice", func(i *Interp, this Value, args []Value) (Value, error) {
		if this.Kind != Object {
			return ObjVal(i.NewArray(nil)), nil
		}
		n := this.O.ArrayLength()
		start, end := sliceRange(args, n)
		var elems []Value
		for k := start; k < end; k++ {
			el, _ := this.O.Get(strconv.Itoa(k))
			elems = append(elems, el)
		}
		return ObjVal(i.NewArray(elems)), nil
	})
	it.def(p, "concat", func(i *Interp, this Value, args []Value) (Value, error) {
		var elems []Value
		appendVal := func(v Value) {
			if v.Kind == Object && v.O.Class == "Array" {
				n := v.O.ArrayLength()
				for k := 0; k < n; k++ {
					el, _ := v.O.Get(strconv.Itoa(k))
					elems = append(elems, el)
				}
			} else {
				elems = append(elems, v)
			}
		}
		appendVal(this)
		for _, a := range args {
			appendVal(a)
		}
		return ObjVal(i.NewArray(elems)), nil
	})
	it.def(p, "forEach", func(i *Interp, this Value, args []Value) (Value, error) {
		if this.Kind != Object {
			return UndefinedVal, nil
		}
		cb := arg(args, 0)
		n := this.O.ArrayLength()
		for k := 0; k < n; k++ {
			el, _ := this.O.Get(strconv.Itoa(k))
			if _, err := i.CallFunction(cb, UndefinedVal, []Value{el, NumberVal(float64(k)), this}); err != nil {
				return UndefinedVal, err
			}
		}
		return UndefinedVal, nil
	})
	it.def(p, "map", func(i *Interp, this Value, args []Value) (Value, error) {
		if this.Kind != Object {
			return ObjVal(i.NewArray(nil)), nil
		}
		cb := arg(args, 0)
		n := this.O.ArrayLength()
		elems := make([]Value, 0, n)
		for k := 0; k < n; k++ {
			el, _ := this.O.Get(strconv.Itoa(k))
			v, err := i.CallFunction(cb, UndefinedVal, []Value{el, NumberVal(float64(k)), this})
			if err != nil {
				return UndefinedVal, err
			}
			elems = append(elems, v)
		}
		return ObjVal(i.NewArray(elems)), nil
	})
	it.def(p, "filter", func(i *Interp, this Value, args []Value) (Value, error) {
		if this.Kind != Object {
			return ObjVal(i.NewArray(nil)), nil
		}
		cb := arg(args, 0)
		n := this.O.ArrayLength()
		var elems []Value
		for k := 0; k < n; k++ {
			el, _ := this.O.Get(strconv.Itoa(k))
			v, err := i.CallFunction(cb, UndefinedVal, []Value{el, NumberVal(float64(k)), this})
			if err != nil {
				return UndefinedVal, err
			}
			if ToBool(v) {
				elems = append(elems, el)
			}
		}
		return ObjVal(i.NewArray(elems)), nil
	})
}

func sliceRange(args []Value, n int) (int, int) {
	start, end := 0, n
	if a := arg(args, 0); a.Kind != Undefined {
		start = clampIndex(int(ToNumber(a)), n)
	}
	if a := arg(args, 1); a.Kind != Undefined {
		end = clampIndex(int(ToNumber(a)), n)
	}
	if end < start {
		end = start
	}
	return start, end
}

func clampIndex(i, n int) int {
	if i < 0 {
		i += n
	}
	if i < 0 {
		return 0
	}
	if i > n {
		return n
	}
	return i
}

func (it *Interp) setupString(g *Obj) {
	strCtor := it.NewNative("String", func(i *Interp, this Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return StringVal(""), nil
		}
		return StringVal(ToString(args[0])), nil
	})
	strCtor.Set("prototype", ObjVal(it.StringProto))
	it.def(strCtor, "fromCharCode", func(i *Interp, this Value, args []Value) (Value, error) {
		var b strings.Builder
		for _, a := range args {
			b.WriteRune(rune(int(ToNumber(a))))
		}
		return StringVal(b.String()), nil
	})
	g.Set("String", ObjVal(strCtor))

	p := it.StringProto
	strFn := func(f func(s string, args []Value) Value) NativeFunc {
		return func(i *Interp, this Value, args []Value) (Value, error) {
			return f(ToString(this), args), nil
		}
	}
	it.def(p, "charAt", strFn(func(s string, args []Value) Value {
		k := int(ToNumber(arg(args, 0)))
		if k < 0 || k >= len(s) {
			return StringVal("")
		}
		return StringVal(string(s[k]))
	}))
	it.def(p, "charCodeAt", strFn(func(s string, args []Value) Value {
		k := int(ToNumber(arg(args, 0)))
		if k < 0 || k >= len(s) {
			return NumberVal(math.NaN())
		}
		return NumberVal(float64(s[k]))
	}))
	it.def(p, "indexOf", strFn(func(s string, args []Value) Value {
		return NumberVal(float64(strings.Index(s, ToString(arg(args, 0)))))
	}))
	it.def(p, "lastIndexOf", strFn(func(s string, args []Value) Value {
		return NumberVal(float64(strings.LastIndex(s, ToString(arg(args, 0)))))
	}))
	it.def(p, "toUpperCase", strFn(func(s string, args []Value) Value {
		return StringVal(strings.ToUpper(s))
	}))
	it.def(p, "toLowerCase", strFn(func(s string, args []Value) Value {
		return StringVal(strings.ToLower(s))
	}))
	it.def(p, "trim", strFn(func(s string, args []Value) Value {
		return StringVal(strings.TrimSpace(s))
	}))
	it.def(p, "substring", strFn(func(s string, args []Value) Value {
		a := clampIndex(int(ToNumber(arg(args, 0))), len(s))
		b := len(s)
		if v := arg(args, 1); v.Kind != Undefined {
			b = clampIndex(int(ToNumber(v)), len(s))
		}
		if a > b {
			a, b = b, a
		}
		return StringVal(s[a:b])
	}))
	it.def(p, "substr", strFn(func(s string, args []Value) Value {
		start := int(ToNumber(arg(args, 0)))
		if start < 0 {
			start += len(s)
			if start < 0 {
				start = 0
			}
		}
		if start > len(s) {
			return StringVal("")
		}
		n := len(s) - start
		if v := arg(args, 1); v.Kind != Undefined {
			n = int(ToNumber(v))
		}
		if n < 0 {
			n = 0
		}
		if start+n > len(s) {
			n = len(s) - start
		}
		return StringVal(s[start : start+n])
	}))
	it.def(p, "slice", strFn(func(s string, args []Value) Value {
		a := 0
		if v := arg(args, 0); v.Kind != Undefined {
			a = clampIndex(int(ToNumber(v)), len(s))
		}
		b := len(s)
		if v := arg(args, 1); v.Kind != Undefined {
			b = clampIndex(int(ToNumber(v)), len(s))
		}
		if b < a {
			b = a
		}
		return StringVal(s[a:b])
	}))
	it.def(p, "split", func(i *Interp, this Value, args []Value) (Value, error) {
		s := ToString(this)
		sepv := arg(args, 0)
		if sepv.Kind == Undefined {
			return ObjVal(i.NewArray([]Value{StringVal(s)})), nil
		}
		sep := ToString(sepv)
		var parts []string
		if sep == "" {
			for _, c := range s {
				parts = append(parts, string(c))
			}
		} else {
			parts = strings.Split(s, sep)
		}
		elems := make([]Value, len(parts))
		for k, part := range parts {
			elems[k] = StringVal(part)
		}
		return ObjVal(i.NewArray(elems)), nil
	})
	it.def(p, "replace", strFn(func(s string, args []Value) Value {
		pat := ToString(arg(args, 0))
		rep := ToString(arg(args, 1))
		return StringVal(strings.Replace(s, pat, rep, 1))
	}))
	it.def(p, "concat", strFn(func(s string, args []Value) Value {
		var b strings.Builder
		b.WriteString(s)
		for _, a := range args {
			b.WriteString(ToString(a))
		}
		return StringVal(b.String())
	}))
	it.def(p, "toString", strFn(func(s string, args []Value) Value {
		return StringVal(s)
	}))
}

func (it *Interp) setupNumberBoolean(g *Obj) {
	numCtor := it.NewNative("Number", func(i *Interp, this Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return NumberVal(0), nil
		}
		return NumberVal(ToNumber(args[0])), nil
	})
	numCtor.Set("prototype", ObjVal(it.NumberProto))
	numCtor.Set("MAX_VALUE", NumberVal(math.MaxFloat64))
	numCtor.Set("MIN_VALUE", NumberVal(5e-324))
	g.Set("Number", ObjVal(numCtor))

	it.def(it.NumberProto, "toString", func(i *Interp, this Value, args []Value) (Value, error) {
		n := ToNumber(this)
		if a := arg(args, 0); a.Kind != Undefined {
			radix := int(ToNumber(a))
			if radix >= 2 && radix <= 36 && n == math.Trunc(n) {
				return StringVal(strconv.FormatInt(int64(n), radix)), nil
			}
		}
		return StringVal(ToString(NumberVal(n))), nil
	})
	it.def(it.NumberProto, "toFixed", func(i *Interp, this Value, args []Value) (Value, error) {
		n := ToNumber(this)
		d := int(ToNumber(arg(args, 0)))
		return StringVal(strconv.FormatFloat(n, 'f', d, 64)), nil
	})

	boolCtor := it.NewNative("Boolean", func(i *Interp, this Value, args []Value) (Value, error) {
		return BoolVal(ToBool(arg(args, 0))), nil
	})
	boolCtor.Set("prototype", ObjVal(it.BooleanProto))
	g.Set("Boolean", ObjVal(boolCtor))
}

func (it *Interp) setupErrors(g *Obj) {
	it.ErrorProto.Set("name", StringVal("Error"))
	it.ErrorProto.Set("message", StringVal(""))
	it.def(it.ErrorProto, "toString", func(i *Interp, this Value, args []Value) (Value, error) {
		return StringVal(ToString(this)), nil
	})
	mkErrCtor := func(name string) *Obj {
		ctor := it.NewNative(name, func(i *Interp, this Value, args []Value) (Value, error) {
			e := i.NewError(name, ToString(arg(args, 0)))
			if len(args) == 0 {
				e.Set("message", StringVal(""))
			}
			return ObjVal(e), nil
		})
		ctor.Set("prototype", ObjVal(it.ErrorProto))
		return ctor
	}
	for _, name := range []string{"Error", "TypeError", "ReferenceError", "RangeError", "SyntaxError"} {
		g.Set(name, ObjVal(mkErrCtor(name)))
	}
}

func (it *Interp) setupTopLevelFuncs(g *Obj) {
	it.def(g, "parseInt", func(i *Interp, this Value, args []Value) (Value, error) {
		s := strings.TrimSpace(ToString(arg(args, 0)))
		radix := 10
		if a := arg(args, 1); a.Kind != Undefined {
			radix = int(ToNumber(a))
			if radix == 0 {
				radix = 10
			}
		}
		neg := false
		if strings.HasPrefix(s, "-") {
			neg = true
			s = s[1:]
		} else if strings.HasPrefix(s, "+") {
			s = s[1:]
		}
		if radix == 16 && (strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X")) {
			s = s[2:]
		}
		end := 0
		for end < len(s) && digitVal(s[end]) < radix {
			end++
		}
		if end == 0 {
			return NumberVal(math.NaN()), nil
		}
		n, err := strconv.ParseInt(s[:end], radix, 64)
		if err != nil {
			return NumberVal(math.NaN()), nil
		}
		if neg {
			n = -n
		}
		return NumberVal(float64(n)), nil
	})
	it.def(g, "parseFloat", func(i *Interp, this Value, args []Value) (Value, error) {
		s := strings.TrimSpace(ToString(arg(args, 0)))
		end := len(s)
		for end > 0 {
			if _, err := strconv.ParseFloat(s[:end], 64); err == nil {
				break
			}
			end--
		}
		if end == 0 {
			return NumberVal(math.NaN()), nil
		}
		n, _ := strconv.ParseFloat(s[:end], 64)
		return NumberVal(n), nil
	})
	it.def(g, "isNaN", func(i *Interp, this Value, args []Value) (Value, error) {
		return BoolVal(math.IsNaN(ToNumber(arg(args, 0)))), nil
	})
	it.def(g, "isFinite", func(i *Interp, this Value, args []Value) (Value, error) {
		n := ToNumber(arg(args, 0))
		return BoolVal(!math.IsNaN(n) && !math.IsInf(n, 0)), nil
	})

	// eval is special-cased at call sites; the body here only handles the
	// indirect-call case (e.g. var e = eval; e("...")), which evaluates in
	// the global scope. Mini-JS routes it through the same mechanism by
	// lowering against the top-level function.
	evalNative := it.NewNative("eval", func(i *Interp, this Value, args []Value) (Value, error) {
		a := arg(args, 0)
		if a.Kind != String {
			return a, nil
		}
		fn, lout := i.lowerEvalFor(i.Mod.Top(), a.S)
		if lout.kind != oNormal {
			return UndefinedVal, &Thrown{Val: lout.val}
		}
		env := &Env{Parent: &Env{Slots: nil, Fn: i.Mod.Top()}, Slots: make([]Value, fn.NumSlots), Fn: fn}
		nf := &Frame{Fn: fn, Env: env, Regs: make([]Value, fn.NumRegs), CallSite: -1}
		i.pushFrame(nf)
		out := i.execBlock(nf, fn.Body)
		i.popFrame()
		switch out.kind {
		case oReturn, oNormal:
			return out.val, nil
		case oThrow:
			return UndefinedVal, &Thrown{Val: out.val}
		default:
			return UndefinedVal, out.err
		}
	})
	evalNative.Native.IsEval = true
	g.Set("eval", ObjVal(evalNative))

	// Date: only now(), returning the configured timestamp.
	date := it.NewNative("Date", func(i *Interp, this Value, args []Value) (Value, error) {
		o := i.NewPlain()
		o.Set("__time", NumberVal(i.Now()))
		return ObjVal(o), nil
	})
	it.def(date, "now", func(i *Interp, this Value, args []Value) (Value, error) {
		return NumberVal(i.Now()), nil
	})
	g.Set("Date", ObjVal(date))

	// __input(name): the generic indeterminate program input source.
	it.def(g, "__input", func(i *Interp, this Value, args []Value) (Value, error) {
		return i.Input(ToString(arg(args, 0))), nil
	})

	// __observe(label, value): a no-op marker used by generated test
	// programs; the interesting facts come from evaluating the arguments.
	it.def(g, "__observe", func(i *Interp, this Value, args []Value) (Value, error) {
		return UndefinedVal, nil
	})
}

func digitVal(b byte) int {
	switch {
	case b >= '0' && b <= '9':
		return int(b - '0')
	case b >= 'a' && b <= 'z':
		return int(b-'a') + 10
	case b >= 'A' && b <= 'Z':
		return int(b-'A') + 10
	}
	return 99
}
