package interp_test

import (
	"bytes"
	"strings"
	"testing"

	"determinacy/internal/interp"
	"determinacy/internal/ir"
)

// run executes src and returns everything printed via console.log.
func run(t *testing.T, src string) string {
	t.Helper()
	out := runOpts(t, src, interp.Options{})
	return out
}

func runOpts(t *testing.T, src string, opts interp.Options) string {
	t.Helper()
	mod, err := ir.Compile("test.js", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	var buf bytes.Buffer
	opts.Out = &buf
	it := interp.New(mod, opts)
	if _, err := it.Run(); err != nil {
		t.Fatalf("run: %v\noutput so far:\n%s\nIR:\n%s", err, buf.String(), mod)
	}
	return buf.String()
}

// expectLines runs src and compares console output lines.
func expectLines(t *testing.T, src string, want ...string) {
	t.Helper()
	got := strings.Split(strings.TrimRight(run(t, src), "\n"), "\n")
	if len(got) != len(want) {
		t.Fatalf("got %d lines %q, want %d lines %q", len(got), got, len(want), want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("line %d: got %q, want %q", i, got[i], want[i])
		}
	}
}

func TestArithmetic(t *testing.T) {
	expectLines(t, `
		console.log(1 + 2 * 3);
		console.log((1 + 2) * 3);
		console.log(10 % 3);
		console.log(7 / 2);
		console.log(2 - 5);
	`, "7", "9", "1", "3.5", "-3")
}

func TestStringConcat(t *testing.T) {
	expectLines(t, `
		console.log("a" + "b");
		console.log("n=" + 42);
		console.log(1 + "2");
		console.log("x" + true + null + undefined);
	`, "ab", "n=42", "12", "xtruenullundefined")
}

func TestVariablesAndScope(t *testing.T) {
	expectLines(t, `
		var x = 1;
		function f() { var x = 2; return x; }
		console.log(f());
		console.log(x);
	`, "2", "1")
}

func TestClosures(t *testing.T) {
	expectLines(t, `
		function counter() {
			var n = 0;
			return function() { n = n + 1; return n; };
		}
		var c = counter();
		console.log(c(), c(), c());
		var d = counter();
		console.log(d());
	`, "1 2 3", "1")
}

func TestObjectsAndPrototypes(t *testing.T) {
	expectLines(t, `
		function Rectangle(w, h) {
			this.width = w;
			this.height = h;
		}
		Rectangle.prototype.area = function() { return this.width * this.height; };
		var r = new Rectangle(3, 4);
		console.log(r.area());
		console.log(r instanceof Rectangle);
		console.log(r.width, r["height"]);
	`, "12", "true", "3 4")
}

func TestFigure3Rectangle(t *testing.T) {
	// The paper's Figure 3, verbatim modulo alert -> console.log formatting.
	expectLines(t, `
		function Rectangle(w, h) {
			this.width = w;
			this.height = h;
		}
		Rectangle.prototype.toString = function() {
			return "[" + this.width + "x" + this.height + "]";
		};
		String.prototype.cap = function() {
			return this[0].toUpperCase() + this.substr(1);
		};
		function defAccessors(prop) {
			Rectangle.prototype["get" + prop.cap()] =
				function() { return this[prop]; };
			Rectangle.prototype["set" + prop.cap()] =
				function(v) { this[prop] = v; };
		}
		var props = ["width", "height"];
		for (var i = 0; i < props.length; i++)
			defAccessors(props[i]);
		var r = new Rectangle(20, 30);
		r.setWidth(r.getWidth() + 20);
		console.log(r.toString());
	`, "[40x30]")
}

func TestControlFlow(t *testing.T) {
	expectLines(t, `
		var s = 0;
		for (var i = 0; i < 5; i++) { if (i === 2) continue; s += i; }
		console.log(s);
		var j = 0;
		while (true) { j++; if (j > 3) break; }
		console.log(j);
		var k = 0;
		do { k++; } while (k < 2);
		console.log(k);
	`, "8", "4", "2")
}

func TestSwitch(t *testing.T) {
	expectLines(t, `
		function f(x) {
			switch (x) {
			case 1: return "one";
			case 2:
			case 3: return "few";
			default: return "many";
			}
		}
		console.log(f(1), f(2), f(3), f(4));
	`, "one few few many")
}

func TestTryCatchFinally(t *testing.T) {
	expectLines(t, `
		function f() {
			try {
				throw new Error("boom");
			} catch (e) {
				console.log("caught " + e.message);
			} finally {
				console.log("finally");
			}
			try {
				return "ret";
			} finally {
				console.log("finally2");
			}
		}
		console.log(f());
	`, "caught boom", "finally", "finally2", "ret")
}

func TestTypeofAndTernary(t *testing.T) {
	expectLines(t, `
		console.log(typeof 1, typeof "s", typeof undefined, typeof null,
			typeof {}, typeof function(){}, typeof true);
		console.log(typeof notDeclared);
		console.log(1 < 2 ? "y" : "n");
	`, "number string undefined object object function boolean", "undefined", "y")
}

func TestLogicalShortCircuit(t *testing.T) {
	expectLines(t, `
		function boom() { throw new Error("should not run"); }
		console.log(false && boom());
		console.log(true || boom());
		console.log(0 || "dflt");
		console.log("a" && "b");
	`, "false", "true", "dflt", "b")
}

func TestForIn(t *testing.T) {
	expectLines(t, `
		var o = {a: 1, b: 2, c: 3};
		var keys = [];
		for (var k in o) keys.push(k);
		console.log(keys.join(","));
		var arr = [10, 20];
		var idx = [];
		for (var i in arr) idx.push(i);
		console.log(idx.join(","));
	`, "a,b,c", "0,1")
}

func TestArrays(t *testing.T) {
	expectLines(t, `
		var a = [1, 2, 3];
		a.push(4);
		console.log(a.length, a.join("-"));
		console.log(a.indexOf(3), a.indexOf(99));
		console.log(a.slice(1, 3).join(","));
		console.log(a.pop(), a.length);
		var b = a.map(function(x) { return x * 10; });
		console.log(b.join(","));
	`, "4 1-2-3-4", "2 -1", "2,3", "4 3", "10,20,30")
}

func TestStringMethods(t *testing.T) {
	expectLines(t, `
		var s = "hello world";
		console.log(s.toUpperCase());
		console.log(s.indexOf("world"));
		console.log(s.substring(0, 5));
		console.log(s.substr(6));
		console.log(s.split(" ").join("|"));
		console.log(s.charAt(1), s[1], s.length);
		console.log("width".cap === undefined);
	`, "HELLO WORLD", "6", "hello", "world", "hello|world",
		"e e 11", "true")
}

func TestEvalDirect(t *testing.T) {
	expectLines(t, `
		var x = 10;
		function f() {
			var y = 32;
			return eval("x + y");
		}
		console.log(f());
		console.log(eval("1 + 2 * 3"));
	`, "42", "7")
}

func TestEvalFigure4(t *testing.T) {
	// The paper's Figure 4 (ivymap), with the DOM-free first line.
	expectLines(t, `
		var ivymap = {};
		ivymap["pc.sy.banner.tcck."] = function() { console.log("tcck handler"); };
		function showIvyViaJs(locationId) {
			var _f = undefined;
			var _fconv = "ivymap['" + locationId + "']";
			try {
				_f = eval(_fconv);
				if (_f != undefined) {
					_f();
				}
			} catch (e) {
			}
		}
		showIvyViaJs('pc.sy.banner.tcck.');
		showIvyViaJs('pc.sy.banner.duilian.');
	`, "tcck handler")
}

func TestCallApply(t *testing.T) {
	expectLines(t, `
		function who() { return this.name; }
		console.log(who.call({name: "alice"}));
		console.log(who.apply({name: "bob"}, []));
		function add(a, b) { return a + b; }
		console.log(add.apply(null, [1, 2]));
	`, "alice", "bob", "3")
}

func TestUpdateExpressions(t *testing.T) {
	expectLines(t, `
		var i = 5;
		console.log(i++, i, ++i, i);
		var o = {n: 1};
		o.n++;
		console.log(o.n);
		var a = [7];
		a[0]--;
		console.log(a[0]);
	`, "5 6 7 7", "2", "6")
}

func TestCompoundAssign(t *testing.T) {
	expectLines(t, `
		var x = 10;
		x += 5; console.log(x);
		x -= 3; console.log(x);
		x *= 2; console.log(x);
		var s = "a"; s += "b"; console.log(s);
		var o = {v: 1}; o.v += 10; console.log(o.v);
	`, "15", "12", "24", "ab", "11")
}

func TestDelete(t *testing.T) {
	expectLines(t, `
		var o = {a: 1, b: 2};
		console.log(delete o.a, o.a, "a" in o, "b" in o);
	`, "true undefined false true")
}

func TestSeededRandomDeterministic(t *testing.T) {
	src := `console.log(Math.random(), Math.random());`
	a := runOpts(t, src, interp.Options{Seed: 7})
	b := runOpts(t, src, interp.Options{Seed: 7})
	c := runOpts(t, src, interp.Options{Seed: 8})
	if a != b {
		t.Errorf("same seed produced different streams: %q vs %q", a, b)
	}
	if a == c {
		t.Errorf("different seeds produced identical streams: %q", a)
	}
}

func TestInputs(t *testing.T) {
	got := runOpts(t, `console.log(__input("n") + 1);`, interp.Options{
		Inputs: map[string]interp.Value{"n": interp.NumberVal(41)},
	})
	if strings.TrimSpace(got) != "42" {
		t.Errorf("got %q, want 42", got)
	}
}

func TestUncaughtThrow(t *testing.T) {
	mod := ir.MustCompile("t.js", `throw new Error("x");`)
	it := interp.New(mod, interp.Options{})
	_, err := it.Run()
	if err == nil {
		t.Fatal("expected error")
	}
	var th *interp.Thrown
	if !errorsAs(err, &th) {
		t.Fatalf("expected Thrown, got %T: %v", err, err)
	}
}

func errorsAs(err error, target *(*interp.Thrown)) bool {
	for e := err; e != nil; {
		if t, ok := e.(*interp.Thrown); ok {
			*target = t
			return true
		}
		type unwrapper interface{ Unwrap() error }
		u, ok := e.(unwrapper)
		if !ok {
			return false
		}
		e = u.Unwrap()
	}
	return false
}

func TestStepBudget(t *testing.T) {
	mod := ir.MustCompile("t.js", `while (true) {}`)
	it := interp.New(mod, interp.Options{MaxSteps: 1000})
	_, err := it.Run()
	if err != interp.ErrBudget {
		t.Fatalf("expected ErrBudget, got %v", err)
	}
}

func TestNamedFunctionExpression(t *testing.T) {
	expectLines(t, `
		var fac = function f(n) { return n <= 1 ? 1 : n * f(n - 1); };
		console.log(fac(5));
	`, "120")
}

func TestFigure2Runs(t *testing.T) {
	// The paper's Figure 2 program; Math.random()*100 evaluates below 32
	// with seed 1 or not — either way the program must run to completion.
	src := `
	(function() {
		function checkf(p) {
			if (p.f < 32)
				setg(p, 42);
		}
		function setg(r, v) {
			r.g = v;
		}
		var x = { f: 23 },
			y = { f: Math.random() * 100 };
		checkf(x);
		checkf(y);
		(y.f > 50 ? checkf : setg)(x, 72);
		var z = { f: x.g - 16, h: true };
		checkf(z);
		console.log("x.g=" + x.g);
	})();
	`
	for seed := uint64(0); seed < 4; seed++ {
		out := runOpts(t, src, interp.Options{Seed: seed})
		if !strings.HasPrefix(out, "x.g=") {
			t.Errorf("seed %d: unexpected output %q", seed, out)
		}
	}
}
