package interp_test

import (
	"math"
	"testing"
	"testing/quick"

	"determinacy/internal/interp"
	"determinacy/internal/ir"
)

func TestToBool(t *testing.T) {
	cases := []struct {
		v    interp.Value
		want bool
	}{
		{interp.UndefinedVal, false},
		{interp.NullVal, false},
		{interp.BoolVal(true), true},
		{interp.NumberVal(0), false},
		{interp.NumberVal(-0.0), false},
		{interp.NumberVal(math.NaN()), false},
		{interp.NumberVal(1e-10), true},
		{interp.StringVal(""), false},
		{interp.StringVal("0"), true},
		{interp.StringVal("false"), true},
	}
	for _, c := range cases {
		if got := interp.ToBool(c.v); got != c.want {
			t.Errorf("ToBool(%v) = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestToNumber(t *testing.T) {
	cases := map[string]float64{
		"":          0,
		"  42  ":    42,
		"3.5":       3.5,
		"0x10":      16,
		"-7":        -7,
		"1e2":       100,
		"Infinity":  math.Inf(1),
		"-Infinity": math.Inf(-1),
	}
	for s, want := range cases {
		got := interp.ToNumber(interp.StringVal(s))
		if got != want {
			t.Errorf("ToNumber(%q) = %v, want %v", s, got, want)
		}
	}
	if !math.IsNaN(interp.ToNumber(interp.StringVal("abc"))) {
		t.Error("non-numeric string must convert to NaN")
	}
	if !math.IsNaN(interp.ToNumber(interp.UndefinedVal)) {
		t.Error("undefined must convert to NaN")
	}
	if interp.ToNumber(interp.NullVal) != 0 {
		t.Error("null must convert to 0")
	}
	if interp.ToNumber(interp.BoolVal(true)) != 1 {
		t.Error("true must convert to 1")
	}
}

func TestToStringNumbers(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		42:      "42",
		-1.5:    "-1.5",
		1e21:    "1e+21",
		0.001:   "0.001",
		100000:  "100000",
		123.456: "123.456",
	}
	for n, want := range cases {
		if got := interp.ToString(interp.NumberVal(n)); got != want {
			t.Errorf("ToString(%v) = %q, want %q", n, got, want)
		}
	}
	if interp.ToString(interp.NumberVal(math.NaN())) != "NaN" {
		t.Error("NaN renders as NaN")
	}
	if interp.ToString(interp.NumberVal(math.Inf(1))) != "Infinity" {
		t.Error("Inf renders as Infinity")
	}
}

func TestEqualityTable(t *testing.T) {
	undef, null := interp.UndefinedVal, interp.NullVal
	if !interp.LooseEquals(undef, null) || !interp.LooseEquals(null, undef) {
		t.Error("undefined == null")
	}
	if interp.StrictEquals(undef, null) {
		t.Error("undefined !== null")
	}
	if !interp.LooseEquals(interp.NumberVal(1), interp.StringVal("1")) {
		t.Error(`1 == "1"`)
	}
	if !interp.LooseEquals(interp.BoolVal(true), interp.NumberVal(1)) {
		t.Error("true == 1")
	}
	if interp.LooseEquals(interp.NumberVal(math.NaN()), interp.NumberVal(math.NaN())) {
		t.Error("NaN != NaN")
	}
	if interp.StrictEquals(interp.NumberVal(math.NaN()), interp.NumberVal(math.NaN())) {
		t.Error("NaN !== NaN")
	}
}

// Property: strict equality implies loose equality.
func TestStrictImpliesLoose(t *testing.T) {
	mk := func(kind uint8, n float64, s string, b bool) interp.Value {
		switch kind % 5 {
		case 0:
			return interp.UndefinedVal
		case 1:
			return interp.NullVal
		case 2:
			return interp.BoolVal(b)
		case 3:
			return interp.NumberVal(n)
		default:
			return interp.StringVal(s)
		}
	}
	f := func(k1, k2 uint8, n1, n2 float64, s1, s2 string, b1, b2 bool) bool {
		v1, v2 := mk(k1, n1, s1, b1), mk(k2, n2, s2, b2)
		if interp.StrictEquals(v1, v2) && !interp.LooseEquals(v1, v2) {
			return false
		}
		// Symmetry of both relations.
		if interp.StrictEquals(v1, v2) != interp.StrictEquals(v2, v1) {
			return false
		}
		return interp.LooseEquals(v1, v2) == interp.LooseEquals(v2, v1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: ToInt32/ToUint32 agree with two's-complement reinterpretation.
func TestInt32Uint32Agree(t *testing.T) {
	f := func(n int32) bool {
		v := interp.NumberVal(float64(n))
		return interp.ToInt32(v) == n && interp.ToUint32(v) == uint32(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: ToString∘NumberVal is parseable back via ToNumber for finite
// values (a JS invariant: Number(String(n)) === n).
func TestNumberStringRoundTrip(t *testing.T) {
	f := func(n float64) bool {
		if math.IsNaN(n) || math.IsInf(n, 0) {
			return true
		}
		s := interp.ToString(interp.NumberVal(n))
		back := interp.ToNumber(interp.StringVal(s))
		return back == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestTypeOf(t *testing.T) {
	cases := map[string]string{
		"undefined": interp.TypeOf(interp.UndefinedVal),
		"object":    interp.TypeOf(interp.NullVal),
		"boolean":   interp.TypeOf(interp.BoolVal(false)),
		"number":    interp.TypeOf(interp.NumberVal(1)),
		"string":    interp.TypeOf(interp.StringVal("")),
	}
	for want, got := range cases {
		if got != want {
			t.Errorf("TypeOf: got %q want %q", got, want)
		}
	}
}

func TestObjectModel(t *testing.T) {
	mod := mustModule(t, "var probe = 1;")
	it := interp.New(mod, interp.Options{})
	o := it.NewPlain()
	o.Set("a", interp.NumberVal(1))
	o.Set("b", interp.NumberVal(2))
	o.Set("a", interp.NumberVal(3)) // overwrite keeps order
	keys := o.OwnKeys()
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Errorf("keys = %v", keys)
	}
	if !o.Delete("a") || o.Delete("a") {
		t.Error("delete semantics")
	}
	if _, ok := o.Get("a"); ok {
		t.Error("deleted key still present")
	}

	arr := it.NewArray([]interp.Value{interp.NumberVal(9)})
	arr.Set("5", interp.NumberVal(1))
	if arr.ArrayLength() != 6 {
		t.Errorf("length after sparse set = %d, want 6", arr.ArrayLength())
	}
	arr.Set("length", interp.NumberVal(1))
	if _, ok := arr.Get("5"); ok {
		t.Error("truncating length must delete elements")
	}
}

func mustModule(t *testing.T, src string) *ir.Module {
	t.Helper()
	m, err := ir.Compile("t.js", src)
	if err != nil {
		t.Fatal(err)
	}
	return m
}
