package interp

import (
	"determinacy/internal/ir"
	"determinacy/internal/vm"
)

// execBlockVM is the concrete engine's bytecode dispatch loop. Each handler
// replicates its execInstr case exactly — same step accounting, same observe
// calls, same completion values — so tree and bytecode execution are
// indistinguishable to callers and to the differential harness; rare
// instructions delegate to execInstr through Ins.Src. The concrete engine
// carries no inline caches: its property maps have no shapes to key on, and
// the differential battery wants one cache-free engine as the oracle.
func (it *Interp) execBlockVM(f *Frame, code *vm.Code) outcome {
	ins := code.Ins
	for i := range ins {
		p := &ins[i]
		it.steps++
		if it.steps > it.opts.MaxSteps {
			return failed(ErrBudget)
		}
		if it.steps&(interruptEvery-1) == 0 {
			it.checkpoint()
		}
		if it.stopped != nil {
			return failed(it.stopped)
		}
		it.curIn = p.Src

		switch p.Op {
		case vm.OpConst:
			v := litValue(p.Src.(*ir.Const).Val)
			f.Regs[p.A] = v
			it.observe(p.Src, v)
		case vm.OpMove:
			f.Regs[p.A] = f.Regs[p.B]
			it.observe(p.Src, f.Regs[p.A])
		case vm.OpLoadVar:
			f.Regs[p.A] = f.Env.At(int(p.B), int(p.C))
			it.observe(p.Src, f.Regs[p.A])
		case vm.OpStoreVar:
			f.Env.SetAt(int(p.B), int(p.C), f.Regs[p.A])
		case vm.OpLoadGlobal:
			v, ok := it.Global.Get(p.Name)
			if !ok {
				if p.C != 0 {
					v = UndefinedVal
				} else {
					return it.throwError("ReferenceError", p.Name+" is not defined")
				}
			}
			f.Regs[p.A] = v
			it.observe(p.Src, v)
		case vm.OpStoreGlobal:
			it.Global.Set(p.Name, f.Regs[p.A])
		case vm.OpGetField:
			v, out := it.getProp(f.Regs[p.B], p.Name)
			if out.kind != oNormal {
				return out
			}
			f.Regs[p.A] = v
			it.observe(p.Src, v)
		case vm.OpGetProp:
			name := ToString(f.Regs[p.C])
			v, out := it.getProp(f.Regs[p.B], name)
			if out.kind != oNormal {
				return out
			}
			f.Regs[p.A] = v
			it.observe(p.Src, v)
		case vm.OpSetField:
			if out := it.setProp(f.Regs[p.A], p.Name, f.Regs[p.B]); out.kind != oNormal {
				return out
			}
		case vm.OpSetProp:
			name := ToString(f.Regs[p.B])
			if out := it.setProp(f.Regs[p.A], name, f.Regs[p.C]); out.kind != oNormal {
				return out
			}
		case vm.OpBinOp:
			v, out := it.binOp(p.Name, f.Regs[p.B], f.Regs[p.C])
			if out.kind != oNormal {
				return out
			}
			f.Regs[p.A] = v
			it.observe(p.Src, v)
		case vm.OpUnOp:
			v := unOp(p.Name, f.Regs[p.B])
			f.Regs[p.A] = v
			it.observe(p.Src, v)
		case vm.OpIf:
			in := p.Src.(*ir.If)
			var out outcome
			if ToBool(f.Regs[p.A]) {
				out = it.execBlock(f, in.Then)
			} else if in.Else != nil {
				out = it.execBlock(f, in.Else)
			} else {
				continue
			}
			if out.kind != oNormal {
				return out
			}
		case vm.OpReturn:
			v := UndefinedVal
			if p.A >= 0 {
				v = f.Regs[p.A]
			}
			return outcome{kind: oReturn, val: v}
		case vm.OpThrow:
			return outcome{kind: oThrow, val: f.Regs[p.A]}
		case vm.OpBreak:
			return outcome{kind: oBreak}
		case vm.OpContinue:
			return outcome{kind: oContinue}
		case vm.OpLoadVarField:
			// Fused LoadVar + GetField (`x.f`).
			f.Regs[p.A] = f.Env.At(int(p.B), int(p.C))
			it.observe(p.Src, f.Regs[p.A])
			if out := it.stepGate(p.Src2); out.kind != oNormal {
				return out
			}
			v, out := it.getProp(f.Regs[p.A], p.Name)
			if out.kind != oNormal {
				return out
			}
			f.Regs[p.B2] = v
			it.observe(p.Src2, v)
		case vm.OpConstBin:
			// Fused Const + BinOp (`i < 10`, `n + 1`).
			cv := litValue(p.Src.(*ir.Const).Val)
			f.Regs[p.A] = cv
			it.observe(p.Src, cv)
			if out := it.stepGate(p.Src2); out.kind != oNormal {
				return out
			}
			v, out := it.binOp(p.Name, f.Regs[p.C2], f.Regs[p.A])
			if out.kind != oNormal {
				return out
			}
			f.Regs[p.B2] = v
			it.observe(p.Src2, v)
		default: // vm.OpOther
			if out := it.execInstr(f, p.Src); out.kind != oNormal {
				return out
			}
		}
	}
	return okOutcome
}

// stepGate runs the per-instruction step prologue for the second constituent
// of a fused superinstruction, so fused and unfused execution count steps and
// poll interrupts identically.
func (it *Interp) stepGate(in ir.Instr) outcome {
	it.steps++
	if it.steps > it.opts.MaxSteps {
		return failed(ErrBudget)
	}
	if it.steps&(interruptEvery-1) == 0 {
		it.checkpoint()
	}
	if it.stopped != nil {
		return failed(it.stopped)
	}
	it.curIn = in
	return okOutcome
}
