package interp

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"strings"
	"time"

	"determinacy/internal/guard"
	"determinacy/internal/guard/faultinject"
	"determinacy/internal/ir"
	"determinacy/internal/vm"
)

// ErrBudget is returned when execution exceeds the configured step budget.
var ErrBudget = errors.New("interp: step budget exhausted")

// ErrStack is returned when the call stack exceeds the configured limit.
var ErrStack = errors.New("interp: call stack overflow")

// Options configures an interpreter.
type Options struct {
	// MaxSteps bounds the number of executed instructions (0 = default).
	MaxSteps int
	// MaxDepth bounds the call stack depth (0 = default 1000).
	MaxDepth int
	// Out receives console output; nil discards it.
	Out io.Writer
	// Seed initializes the deterministic PRNG behind Math.random.
	Seed uint64
	// Now is the fixed value returned by Date.now().
	Now float64
	// Inputs backs the __input(name) native, the generic indeterminate
	// program-input source used by tests and workloads.
	Inputs map[string]Value
	// Ctx, when non-nil, is polled every interruptEvery steps; once
	// cancelled the run aborts with the ctx-wrapped error.
	Ctx context.Context
	// Deadline, when nonzero, aborts the run with guard.ErrDeadline once
	// the wall clock passes it.
	Deadline time.Time
	// Engine selects the execution engine: vm.EngineBytecode (the default)
	// dispatches through blocks' compiled bytecode; vm.EngineTree walks the
	// IR node-by-node. Both produce identical output and step counts.
	Engine vm.Engine
}

// Interp executes an IR module under the concrete semantics.
type Interp struct {
	Mod    *ir.Module
	Global *Obj

	// Prototype objects of the built-in classes. User code can extend them
	// (e.g. String.prototype.cap in the paper's Figure 3).
	ObjectProto   *Obj
	FunctionProto *Obj
	ArrayProto    *Obj
	StringProto   *Obj
	NumberProto   *Obj
	BooleanProto  *Obj
	ErrorProto    *Obj

	// AfterInstr, when set, observes every register-defining instruction
	// together with the value it produced. The soundness differential test
	// uses it to check determinacy facts against concrete executions.
	AfterInstr func(in ir.Instr, val Value)
	// OnEnterFrame and OnLeaveFrame, when set, observe user-function and
	// eval activations. site is the call-site instruction ID (-1 for calls
	// from native code or embedding APIs).
	OnEnterFrame func(site ir.ID)
	OnLeaveFrame func()

	opts      Options
	steps     int
	nalloc    int
	frames    []*Frame
	evalCache map[string]*ir.Function
	rng       uint64
	// stopped makes interrupts sticky so natives that re-enter execution
	// (CallFunction from embedders) cannot outrun a cancellation.
	stopped error
	// curIn is the instruction currently executing, for panic diagnostics.
	curIn ir.Instr
	// useVM routes compiled blocks through the bytecode dispatch loop.
	useVM bool
}

// Frame is one activation record.
type Frame struct {
	Fn       *ir.Function
	Env      *Env
	Regs     []Value
	CallSite ir.ID // instruction ID of the call site; -1 for the top level
}

// New creates an interpreter for mod and installs the standard library.
func New(mod *ir.Module, opts Options) *Interp {
	if opts.MaxSteps == 0 {
		opts.MaxSteps = 10_000_000
	}
	if opts.MaxDepth == 0 {
		opts.MaxDepth = 1000
	}
	if opts.Out == nil {
		opts.Out = io.Discard
	}
	it := &Interp{
		Mod:       mod,
		opts:      opts,
		rng:       opts.Seed*2862933555777941757 + 3037000493,
		evalCache: make(map[string]*ir.Function),
	}
	if opts.Engine.Bytecode() {
		it.useVM = true
		vm.Ensure(mod)
	}
	it.setupRuntime()
	return it
}

// Steps reports how many instructions have been executed.
func (it *Interp) Steps() int { return it.steps }

// interruptEvery is the step interval between cooperative interrupt polls;
// a power of two so the hot-loop check is a mask.
const interruptEvery = 2048

// checkpoint polls context cancellation, the wall-clock deadline, and any
// armed fault-injection plan, making a hit sticky via it.stopped.
func (it *Interp) checkpoint() {
	if faultinject.Armed() {
		faultinject.Hit(faultinject.SiteInterpStep)
	}
	if it.stopped == nil {
		if err := guard.CheckInterrupt(it.opts.Ctx, it.opts.Deadline); err != nil {
			it.stopped = err
		}
	}
}

// CurrentPoint reports the instruction currently executing, for panic
// diagnostics: its ID and "line:col" position, or (-1, "") outside
// execution.
func (it *Interp) CurrentPoint() (int, string) {
	if it.curIn == nil {
		return -1, ""
	}
	p := it.curIn.IPos()
	return int(it.curIn.IID()), fmt.Sprintf("%d:%d", p.Line, p.Col)
}

// NewObject allocates a plain object with the given prototype (nil for a
// prototype-less object).
func (it *Interp) NewObject(proto *Obj) *Obj {
	it.nalloc++
	return &Obj{Class: "Object", Proto: proto, Alloc: it.nalloc}
}

// NewPlain allocates an object inheriting from Object.prototype.
func (it *Interp) NewPlain() *Obj { return it.NewObject(it.ObjectProto) }

// NewArray allocates an array with the given elements.
func (it *Interp) NewArray(elems []Value) *Obj {
	it.nalloc++
	a := &Obj{Class: "Array", Proto: it.ArrayProto, Alloc: it.nalloc}
	a.setRaw("length", NumberVal(float64(len(elems))))
	for i, e := range elems {
		a.setRaw(fmt.Sprint(i), e)
	}
	return a
}

// NewNative wraps a Go function as a callable object.
func (it *Interp) NewNative(name string, fn NativeFunc) *Obj {
	it.nalloc++
	return &Obj{Class: "Function", Proto: it.FunctionProto, Native: &Native{Name: name, Fn: fn}, Alloc: it.nalloc}
}

// NewClosure creates a function object for fn closing over env.
func (it *Interp) NewClosure(fn *ir.Function, env *Env) *Obj {
	it.nalloc++
	c := &Obj{Class: "Function", Proto: it.FunctionProto, Fn: fn, Env: env, Alloc: it.nalloc}
	proto := it.NewPlain()
	proto.Set("constructor", ObjVal(c))
	c.Set("prototype", ObjVal(proto))
	c.Set("length", NumberVal(float64(len(fn.Params))))
	return c
}

// NewError creates an error object of the given name.
func (it *Interp) NewError(name, msg string) *Obj {
	it.nalloc++
	e := &Obj{Class: "Error", Proto: it.ErrorProto, Alloc: it.nalloc}
	e.Set("name", StringVal(name))
	e.Set("message", StringVal(msg))
	return e
}

// Random returns the next value of the deterministic PRNG (xorshift64*).
func (it *Interp) Random() float64 {
	it.rng ^= it.rng >> 12
	it.rng ^= it.rng << 25
	it.rng ^= it.rng >> 27
	x := it.rng * 2685821657736338717
	return float64(x>>11) / float64(1<<53)
}

// Input returns the configured input value for name (undefined if unset).
func (it *Interp) Input(name string) Value {
	if v, ok := it.opts.Inputs[name]; ok {
		return v
	}
	return UndefinedVal
}

// Now returns the configured Date.now value.
func (it *Interp) Now() float64 { return it.opts.Now }

// Out returns the console output writer.
func (it *Interp) Out() io.Writer { return it.opts.Out }

// CallStack returns the call-site instruction IDs from outermost to the
// current frame (the top-level frame contributes nothing).
func (it *Interp) CallStack() []ir.ID {
	var out []ir.ID
	for _, f := range it.frames {
		if f.CallSite >= 0 {
			out = append(out, f.CallSite)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Outcomes

type outKind int

const (
	oNormal outKind = iota
	oReturn
	oBreak
	oContinue
	oThrow
	oFail
)

type outcome struct {
	kind outKind
	val  Value
	err  error
}

var okOutcome = outcome{kind: oNormal}

func failed(err error) outcome { return outcome{kind: oFail, err: err} }

func (it *Interp) throwError(name, msg string) outcome {
	return outcome{kind: oThrow, val: ObjVal(it.NewError(name, msg))}
}

// Run executes the module top level. It returns the value of the last
// top-level expression... the top level has no value, so Run returns
// undefined on success, the thrown value error on an uncaught exception, or
// a budget/stack error. It is a guard boundary: a panic anywhere in the
// interpreter returns as a structured *guard.RunError instead of crashing
// the caller.
func (it *Interp) Run() (v Value, err error) {
	defer guard.Boundary(&err, "interp", it.CurrentPoint)
	top := it.Mod.Top()
	f := &Frame{
		Fn:       top,
		Env:      &Env{Slots: make([]Value, top.NumSlots), Fn: top},
		Regs:     make([]Value, top.NumRegs),
		CallSite: -1,
	}
	it.frames = append(it.frames, f)
	defer func() { it.frames = it.frames[:len(it.frames)-1] }()
	// Poll once before executing anything (without counting an injector
	// hit): a context that is already dead must stop even a program too
	// short to reach a step checkpoint.
	if it.stopped == nil {
		if ierr := guard.CheckInterrupt(it.opts.Ctx, it.opts.Deadline); ierr != nil {
			it.stopped = ierr
		}
	}
	out := it.execBlock(f, top.Body)
	switch out.kind {
	case oNormal, oReturn:
		return out.val, nil
	case oThrow:
		return out.val, &Thrown{Val: out.val}
	case oFail:
		return UndefinedVal, out.err
	default:
		return UndefinedVal, fmt.Errorf("interp: abrupt completion %d escaped top level", out.kind)
	}
}

// CallFunction invokes a function value from native code or embedding APIs.
func (it *Interp) CallFunction(fn Value, this Value, args []Value) (Value, error) {
	out := it.callValue(fn, this, args, -1)
	switch out.kind {
	case oThrow:
		return out.val, &Thrown{Val: out.val}
	case oFail:
		return UndefinedVal, out.err
	default:
		return out.val, nil
	}
}

// ---------------------------------------------------------------------------
// Execution

func (it *Interp) execBlock(f *Frame, b *ir.Block) outcome {
	if it.useVM && b.Code != nil {
		if code, ok := b.Code.(*vm.Code); ok {
			return it.execBlockVM(f, code)
		}
	}
	for _, in := range b.Instrs {
		it.steps++
		if it.steps > it.opts.MaxSteps {
			return failed(ErrBudget)
		}
		if it.steps&(interruptEvery-1) == 0 {
			it.checkpoint()
		}
		if it.stopped != nil {
			return failed(it.stopped)
		}
		it.curIn = in
		out := it.execInstr(f, in)
		if out.kind != oNormal {
			return out
		}
	}
	return okOutcome
}

func (it *Interp) observe(in ir.Instr, v Value) {
	if it.AfterInstr != nil {
		it.AfterInstr(in, v)
	}
}

func (it *Interp) execInstr(f *Frame, in ir.Instr) outcome {
	switch in := in.(type) {
	case *ir.Const:
		v := litValue(in.Val)
		f.Regs[in.Dst] = v
		it.observe(in, v)
	case *ir.Move:
		f.Regs[in.Dst] = f.Regs[in.Src]
		it.observe(in, f.Regs[in.Dst])
	case *ir.LoadVar:
		f.Regs[in.Dst] = f.Env.At(in.Var.Hops, in.Var.Slot)
		it.observe(in, f.Regs[in.Dst])
	case *ir.StoreVar:
		f.Env.SetAt(in.Var.Hops, in.Var.Slot, f.Regs[in.Src])
	case *ir.LoadGlobal:
		v, ok := it.Global.Get(in.Name)
		if !ok {
			if in.ForTypeof {
				v = UndefinedVal
			} else {
				return it.throwError("ReferenceError", in.Name+" is not defined")
			}
		}
		f.Regs[in.Dst] = v
		it.observe(in, v)
	case *ir.StoreGlobal:
		it.Global.Set(in.Name, f.Regs[in.Src])
	case *ir.MakeClosure:
		v := ObjVal(it.NewClosure(in.Fn, f.Env))
		f.Regs[in.Dst] = v
		it.observe(in, v)
	case *ir.MakeObject:
		o := it.NewPlain()
		for _, p := range in.Props {
			o.Set(p.Key, f.Regs[p.Val])
		}
		f.Regs[in.Dst] = ObjVal(o)
		it.observe(in, f.Regs[in.Dst])
	case *ir.MakeArray:
		elems := make([]Value, len(in.Elems))
		for i, r := range in.Elems {
			elems[i] = f.Regs[r]
		}
		f.Regs[in.Dst] = ObjVal(it.NewArray(elems))
		it.observe(in, f.Regs[in.Dst])
	case *ir.GetField:
		v, out := it.getProp(f.Regs[in.Obj], in.Name)
		if out.kind != oNormal {
			return out
		}
		f.Regs[in.Dst] = v
		it.observe(in, v)
	case *ir.GetProp:
		name := ToString(f.Regs[in.Prop])
		v, out := it.getProp(f.Regs[in.Obj], name)
		if out.kind != oNormal {
			return out
		}
		f.Regs[in.Dst] = v
		it.observe(in, v)
	case *ir.SetField:
		if out := it.setProp(f.Regs[in.Obj], in.Name, f.Regs[in.Src]); out.kind != oNormal {
			return out
		}
	case *ir.SetProp:
		name := ToString(f.Regs[in.Prop])
		if out := it.setProp(f.Regs[in.Obj], name, f.Regs[in.Src]); out.kind != oNormal {
			return out
		}
	case *ir.DelField:
		v, out := it.delProp(f.Regs[in.Obj], in.Name)
		if out.kind != oNormal {
			return out
		}
		f.Regs[in.Dst] = v
		it.observe(in, v)
	case *ir.DelProp:
		v, out := it.delProp(f.Regs[in.Obj], ToString(f.Regs[in.Prop]))
		if out.kind != oNormal {
			return out
		}
		f.Regs[in.Dst] = v
		it.observe(in, v)
	case *ir.BinOp:
		v, out := it.binOp(in.Op, f.Regs[in.L], f.Regs[in.R])
		if out.kind != oNormal {
			return out
		}
		f.Regs[in.Dst] = v
		it.observe(in, v)
	case *ir.UnOp:
		v := unOp(in.Op, f.Regs[in.X])
		f.Regs[in.Dst] = v
		it.observe(in, v)
	case *ir.Call:
		return it.execCall(f, in)
	case *ir.New:
		return it.execNew(f, in)
	case *ir.If:
		if ToBool(f.Regs[in.Cond]) {
			return it.execBlock(f, in.Then)
		}
		if in.Else != nil {
			return it.execBlock(f, in.Else)
		}
	case *ir.While:
		return it.execWhile(f, in)
	case *ir.ForIn:
		return it.execForIn(f, in)
	case *ir.Return:
		v := UndefinedVal
		if in.Src != ir.NoReg {
			v = f.Regs[in.Src]
		}
		return outcome{kind: oReturn, val: v}
	case *ir.Throw:
		return outcome{kind: oThrow, val: f.Regs[in.Src]}
	case *ir.Break:
		return outcome{kind: oBreak}
	case *ir.Continue:
		return outcome{kind: oContinue}
	case *ir.Try:
		return it.execTry(f, in)
	default:
		return failed(fmt.Errorf("interp: unknown instruction %T", in))
	}
	return okOutcome
}

func litValue(l ir.Literal) Value {
	switch l.Kind {
	case ir.LitUndefined:
		return UndefinedVal
	case ir.LitNull:
		return NullVal
	case ir.LitBool:
		return BoolVal(l.Bool)
	case ir.LitNumber:
		return NumberVal(l.Num)
	case ir.LitString:
		return StringVal(l.Str)
	}
	return UndefinedVal
}

func (it *Interp) execWhile(f *Frame, in *ir.While) outcome {
	first := true
	for {
		if !in.PostTest || !first {
			if out := it.execBlock(f, in.CondBlock); out.kind != oNormal {
				return out
			}
			if !ToBool(f.Regs[in.Cond]) {
				return okOutcome
			}
		}
		first = false
		out := it.execBlock(f, in.Body)
		switch out.kind {
		case oBreak:
			return okOutcome
		case oNormal, oContinue:
			if in.Update != nil {
				if uout := it.execBlock(f, in.Update); uout.kind != oNormal {
					return uout
				}
			}
		default:
			return out
		}
	}
}

func (it *Interp) execForIn(f *Frame, in *ir.ForIn) outcome {
	obj := f.Regs[in.Obj]
	if obj.Kind != Object {
		return okOutcome // for-in over primitives is a no-op in mini-JS
	}
	names := enumKeys(obj.O)
	for _, name := range names {
		// Skip properties deleted during iteration, as JS does.
		if !obj.O.Has(name) {
			continue
		}
		nv := StringVal(name)
		if in.Global {
			it.Global.Set(in.TargetGlobal, nv)
		} else {
			f.Env.SetAt(in.Target.Hops, in.Target.Slot, nv)
		}
		out := it.execBlock(f, in.Body)
		switch out.kind {
		case oBreak:
			return okOutcome
		case oNormal, oContinue:
		default:
			return out
		}
	}
	return okOutcome
}

// enumKeys returns the for-in key sequence: own keys in insertion order,
// then prototype keys not shadowed. The "length" property of arrays and
// "prototype" of functions are not enumerable.
func enumKeys(o *Obj) []string {
	var out []string
	seen := map[string]bool{}
	for cur := o; cur != nil; cur = cur.Proto {
		for _, k := range cur.keys {
			if seen[k] {
				continue
			}
			seen[k] = true
			if cur.Class == "Array" && k == "length" {
				continue
			}
			if cur.Class == "Function" && (k == "prototype" || k == "length") {
				continue
			}
			// Properties of the built-in prototypes are non-enumerable.
			if cur != o && cur.Data == protoMarker {
				continue
			}
			out = append(out, k)
		}
	}
	return out
}

// protoMarker tags built-in prototype objects whose properties are hidden
// from for-in, approximating non-enumerable built-ins.
var protoMarker = new(int)

func (it *Interp) execTry(f *Frame, in *ir.Try) outcome {
	out := it.execBlock(f, in.Body)
	if out.kind == oThrow && in.HasCatch {
		if in.GlobalCatch != "" {
			it.Global.Set(in.GlobalCatch, out.val)
		} else {
			f.Env.SetAt(in.CatchVar.Hops, in.CatchVar.Slot, out.val)
		}
		out = it.execBlock(f, in.Catch)
	}
	if in.Finally != nil {
		fout := it.execBlock(f, in.Finally)
		if fout.kind != oNormal {
			return fout // an abrupt finally completion wins
		}
	}
	return out
}

func (it *Interp) execCall(f *Frame, in *ir.Call) outcome {
	fnv := f.Regs[in.Fn]
	// Direct eval.
	if fnv.Kind == Object && fnv.O.Native != nil && fnv.O.Native.IsEval {
		return it.execEval(f, in)
	}
	this := UndefinedVal
	if in.This != ir.NoReg {
		this = f.Regs[in.This]
	}
	args := make([]Value, len(in.Args))
	for i, r := range in.Args {
		args[i] = f.Regs[r]
	}
	out := it.callValue(fnv, this, args, in.ID)
	if out.kind != oNormal {
		return out
	}
	f.Regs[in.Dst] = out.val
	it.observe(in, out.val)
	return okOutcome
}

// callValue performs the function-call protocol shared by Call, New and
// native callbacks. A normal outcome carries the return value.
func (it *Interp) callValue(fnv Value, this Value, args []Value, site ir.ID) outcome {
	if !fnv.IsCallable() {
		return it.throwError("TypeError", ToDisplay(fnv)+" is not a function")
	}
	if len(it.frames) >= it.opts.MaxDepth {
		return failed(ErrStack)
	}
	o := fnv.O
	if o.Native != nil {
		v, err := o.Native.Fn(it, this, args)
		if err != nil {
			var th *Thrown
			if errors.As(err, &th) {
				return outcome{kind: oThrow, val: th.Val}
			}
			return failed(err)
		}
		return outcome{kind: oNormal, val: v}
	}

	fn := o.Fn
	env := &Env{Parent: o.Env, Slots: make([]Value, fn.NumSlots), Fn: fn}
	if fn.SelfSlot >= 0 {
		env.Slots[fn.SelfSlot] = fnv
	}
	for i, p := range fn.Params {
		var av Value
		if i < len(args) {
			av = args[i]
		}
		// Params are the first slots, but use the name to be safe with
		// duplicate parameter names.
		_ = p
		env.Slots[slotOf(fn, i)] = av
	}
	if fn.ThisSlot >= 0 {
		if this.Kind == Undefined || this.Kind == Null {
			this = ObjVal(it.Global) // non-strict default receiver
		}
		env.Slots[fn.ThisSlot] = this
	}
	nf := &Frame{Fn: fn, Env: env, Regs: make([]Value, fn.NumRegs), CallSite: site}
	it.pushFrame(nf)
	out := it.execBlock(nf, fn.Body)
	it.popFrame()
	switch out.kind {
	case oNormal:
		return outcome{kind: oNormal, val: UndefinedVal}
	case oReturn:
		return outcome{kind: oNormal, val: out.val}
	case oBreak, oContinue:
		return failed(fmt.Errorf("interp: %v escaped function body", out.kind))
	default:
		return out
	}
}

// slotOf maps parameter index i to its slot. Parameters occupy the first
// slots in declaration order, after an optional self-binding slot.
func slotOf(fn *ir.Function, i int) int {
	name := fn.Params[i]
	for s, n := range fn.SlotNames {
		if n == name {
			return s
		}
	}
	return i
}

func (it *Interp) execNew(f *Frame, in *ir.New) outcome {
	fnv := f.Regs[in.Fn]
	if !fnv.IsCallable() {
		return it.throwError("TypeError", ToDisplay(fnv)+" is not a constructor")
	}
	proto := it.ObjectProto
	if pv, ok := fnv.O.Get("prototype"); ok && pv.Kind == Object {
		proto = pv.O
	}
	obj := it.NewObject(proto)
	args := make([]Value, len(in.Args))
	for i, r := range in.Args {
		args[i] = f.Regs[r]
	}
	out := it.callValue(fnv, ObjVal(obj), args, in.ID)
	if out.kind != oNormal {
		return out
	}
	res := ObjVal(obj)
	if out.val.Kind == Object {
		res = out.val
	}
	f.Regs[in.Dst] = res
	it.observe(in, res)
	return okOutcome
}

// execEval implements direct eval: the argument is parsed and lowered at
// runtime against the caller's static scope chain, then run in an
// environment chained to the caller's.
func (it *Interp) execEval(f *Frame, in *ir.Call) outcome {
	var arg Value
	if len(in.Args) > 0 {
		arg = f.Regs[in.Args[0]]
	}
	if arg.Kind != String {
		f.Regs[in.Dst] = arg
		it.observe(in, arg)
		return okOutcome
	}
	fn, out := it.lowerEvalFor(f.Fn, arg.S)
	if out.kind != oNormal {
		return out
	}
	env := &Env{Parent: f.Env, Slots: make([]Value, fn.NumSlots), Fn: fn}
	nf := &Frame{Fn: fn, Env: env, Regs: make([]Value, fn.NumRegs), CallSite: in.ID}
	if len(it.frames) >= it.opts.MaxDepth {
		return failed(ErrStack)
	}
	it.pushFrame(nf)
	bout := it.execBlock(nf, fn.Body)
	it.popFrame()
	switch bout.kind {
	case oReturn:
		f.Regs[in.Dst] = bout.val
		it.observe(in, bout.val)
		return okOutcome
	case oNormal:
		f.Regs[in.Dst] = UndefinedVal
		it.observe(in, UndefinedVal)
		return okOutcome
	default:
		return bout
	}
}

// lowerEvalFor parses and lowers eval'd source against caller's scope,
// caching the result so repeated eval of the same string reuses program
// points (keeping determinacy facts stable across loop iterations).
func (it *Interp) lowerEvalFor(caller *ir.Function, src string) (*ir.Function, outcome) {
	key := fmt.Sprintf("%d\x00%s", caller.Index, src)
	if fn, ok := it.evalCache[key]; ok {
		return fn, okOutcome
	}
	fn, err := ir.LowerEval(it.Mod, src, caller)
	if err != nil {
		return nil, it.throwError("SyntaxError", err.Error())
	}
	it.evalCache[key] = fn
	return fn, okOutcome
}

func (it *Interp) pushFrame(f *Frame) {
	it.frames = append(it.frames, f)
	if it.OnEnterFrame != nil {
		it.OnEnterFrame(f.CallSite)
	}
}

func (it *Interp) popFrame() {
	it.frames = it.frames[:len(it.frames)-1]
	if it.OnLeaveFrame != nil {
		it.OnLeaveFrame()
	}
}

// ---------------------------------------------------------------------------
// Property access

func (it *Interp) getProp(base Value, name string) (Value, outcome) {
	switch base.Kind {
	case Object:
		if g, ok := base.O.findGetter(name); ok {
			v, err := g(it, base, nil)
			if err != nil {
				var th *Thrown
				if errors.As(err, &th) {
					return UndefinedVal, outcome{kind: oThrow, val: th.Val}
				}
				return UndefinedVal, failed(err)
			}
			return v, okOutcome
		}
		v, _ := base.O.Lookup(name)
		return v, okOutcome
	case String:
		if name == "length" {
			return NumberVal(float64(len(base.S))), okOutcome
		}
		if idx, ok := arrayIndex(name); ok {
			if idx < len(base.S) {
				return StringVal(string(base.S[idx])), okOutcome
			}
			return UndefinedVal, okOutcome
		}
		v, _ := it.StringProto.Lookup(name)
		return v, okOutcome
	case Number:
		v, _ := it.NumberProto.Lookup(name)
		return v, okOutcome
	case Bool:
		v, _ := it.BooleanProto.Lookup(name)
		return v, okOutcome
	default:
		return UndefinedVal, it.throwError("TypeError",
			fmt.Sprintf("cannot read property %q of %s", name, base.Kind))
	}
}

func (it *Interp) setProp(base Value, name string, v Value) outcome {
	switch base.Kind {
	case Object:
		if s, ok := base.O.findSetter(name); ok {
			if _, err := s(it, base, []Value{v}); err != nil {
				var th *Thrown
				if errors.As(err, &th) {
					return outcome{kind: oThrow, val: th.Val}
				}
				return failed(err)
			}
			return okOutcome
		}
		base.O.Set(name, v)
		return okOutcome
	case String, Number, Bool:
		return okOutcome // silently ignored, as in non-strict JS
	default:
		return it.throwError("TypeError",
			fmt.Sprintf("cannot set property %q of %s", name, base.Kind))
	}
}

func (it *Interp) delProp(base Value, name string) (Value, outcome) {
	switch base.Kind {
	case Object:
		return BoolVal(base.O.Delete(name)), okOutcome
	case String, Number, Bool:
		return TrueVal, okOutcome
	default:
		return UndefinedVal, it.throwError("TypeError",
			fmt.Sprintf("cannot delete property %q of %s", name, base.Kind))
	}
}

// ---------------------------------------------------------------------------
// Operators

func (it *Interp) binOp(op string, l, r Value) (Value, outcome) {
	switch op {
	case "+":
		lp, rp := toPrimitive(l), toPrimitive(r)
		if lp.Kind == Object {
			lp = StringVal("[object Object]")
		}
		if rp.Kind == Object {
			rp = StringVal("[object Object]")
		}
		if lp.Kind == String || rp.Kind == String {
			return StringVal(ToString(lp) + ToString(rp)), okOutcome
		}
		return NumberVal(ToNumber(lp) + ToNumber(rp)), okOutcome
	case "-":
		return NumberVal(ToNumber(l) - ToNumber(r)), okOutcome
	case "*":
		return NumberVal(ToNumber(l) * ToNumber(r)), okOutcome
	case "/":
		return NumberVal(ToNumber(l) / ToNumber(r)), okOutcome
	case "%":
		return NumberVal(math.Mod(ToNumber(l), ToNumber(r))), okOutcome
	case "<", ">", "<=", ">=":
		return compareOp(op, l, r), okOutcome
	case "==":
		return BoolVal(LooseEquals(l, r)), okOutcome
	case "!=":
		return BoolVal(!LooseEquals(l, r)), okOutcome
	case "===":
		return BoolVal(StrictEquals(l, r)), okOutcome
	case "!==":
		return BoolVal(!StrictEquals(l, r)), okOutcome
	case "&":
		return NumberVal(float64(ToInt32(l) & ToInt32(r))), okOutcome
	case "|":
		return NumberVal(float64(ToInt32(l) | ToInt32(r))), okOutcome
	case "^":
		return NumberVal(float64(ToInt32(l) ^ ToInt32(r))), okOutcome
	case "<<":
		return NumberVal(float64(ToInt32(l) << (ToUint32(r) & 31))), okOutcome
	case ">>":
		return NumberVal(float64(ToInt32(l) >> (ToUint32(r) & 31))), okOutcome
	case ">>>":
		return NumberVal(float64(ToUint32(l) >> (ToUint32(r) & 31))), okOutcome
	case "||#":
		// Non-short-circuit boolean or, emitted by switch lowering.
		return BoolVal(ToBool(l) || ToBool(r)), okOutcome
	case "in":
		if r.Kind != Object {
			return UndefinedVal, it.throwError("TypeError", "'in' requires an object")
		}
		return BoolVal(r.O.Has(ToString(l))), okOutcome
	case "instanceof":
		if !r.IsCallable() {
			return UndefinedVal, it.throwError("TypeError", "right-hand side of instanceof is not callable")
		}
		pv, ok := r.O.Get("prototype")
		if !ok || pv.Kind != Object {
			return FalseVal, okOutcome
		}
		if l.Kind != Object {
			return FalseVal, okOutcome
		}
		for cur := l.O.Proto; cur != nil; cur = cur.Proto {
			if cur == pv.O {
				return TrueVal, okOutcome
			}
		}
		return FalseVal, okOutcome
	default:
		return UndefinedVal, failed(fmt.Errorf("interp: unknown binary operator %q", op))
	}
}

func compareOp(op string, l, r Value) Value {
	lp, rp := toPrimitive(l), toPrimitive(r)
	if lp.Kind == String && rp.Kind == String {
		switch op {
		case "<":
			return BoolVal(lp.S < rp.S)
		case ">":
			return BoolVal(lp.S > rp.S)
		case "<=":
			return BoolVal(lp.S <= rp.S)
		default:
			return BoolVal(lp.S >= rp.S)
		}
	}
	ln, rn := ToNumber(lp), ToNumber(rp)
	if math.IsNaN(ln) || math.IsNaN(rn) {
		return FalseVal
	}
	switch op {
	case "<":
		return BoolVal(ln < rn)
	case ">":
		return BoolVal(ln > rn)
	case "<=":
		return BoolVal(ln <= rn)
	default:
		return BoolVal(ln >= rn)
	}
}

func unOp(op string, x Value) Value {
	switch op {
	case "!":
		return BoolVal(!ToBool(x))
	case "-":
		return NumberVal(-ToNumber(x))
	case "+":
		return NumberVal(ToNumber(x))
	case "~":
		return NumberVal(float64(^ToInt32(x)))
	case "typeof":
		return StringVal(TypeOf(x))
	default:
		return UndefinedVal
	}
}

// FormatArgs renders console.log arguments.
func FormatArgs(args []Value) string {
	parts := make([]string, len(args))
	for i, a := range args {
		parts[i] = ToDisplay(a)
	}
	return strings.Join(parts, " ")
}
