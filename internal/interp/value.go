// Package interp is the concrete mini-JS interpreter: a big-step,
// trace-capable evaluator over the µJS-style IR of internal/ir. It provides
// the reference semantics (Figure 8 of the paper, extended to full mini-JS)
// against which the instrumented determinacy interpreter in internal/core is
// differentially tested.
package interp

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"determinacy/internal/ast"
	"determinacy/internal/ir"
)

// Kind classifies a runtime value.
type Kind int

// Value kinds.
const (
	Undefined Kind = iota
	Null
	Bool
	Number
	String
	Object
)

func (k Kind) String() string {
	switch k {
	case Undefined:
		return "undefined"
	case Null:
		return "null"
	case Bool:
		return "boolean"
	case Number:
		return "number"
	case String:
		return "string"
	case Object:
		return "object"
	}
	return "?"
}

// Value is a mini-JS runtime value. Objects, arrays and functions are
// represented by *Obj references.
type Value struct {
	Kind Kind
	B    bool
	N    float64
	S    string
	O    *Obj
}

// Convenience constructors.
var (
	UndefinedVal = Value{Kind: Undefined}
	NullVal      = Value{Kind: Null}
	TrueVal      = Value{Kind: Bool, B: true}
	FalseVal     = Value{Kind: Bool, B: false}
)

// BoolVal returns a boolean value.
func BoolVal(b bool) Value { return Value{Kind: Bool, B: b} }

// NumberVal returns a numeric value.
func NumberVal(n float64) Value { return Value{Kind: Number, N: n} }

// StringVal returns a string value.
func StringVal(s string) Value { return Value{Kind: String, S: s} }

// ObjVal wraps an object reference.
func ObjVal(o *Obj) Value { return Value{Kind: Object, O: o} }

// IsCallable reports whether v is a function.
func (v Value) IsCallable() bool {
	return v.Kind == Object && (v.O.Fn != nil || v.O.Native != nil)
}

// NativeFunc is the implementation of a built-in function. Implementations
// may call back into the interpreter (e.g. Function.prototype.call). A
// JavaScript-level exception is reported by returning a *Thrown error.
type NativeFunc func(it *Interp, this Value, args []Value) (Value, error)

// Native is a built-in function with a name used in diagnostics and by the
// determinacy models in internal/core.
type Native struct {
	Name string
	Fn   NativeFunc
	// IsEval marks the global eval binding, which both interpreters
	// special-case at call sites.
	IsEval bool
}

// Thrown wraps a JavaScript exception value travelling through Go code.
type Thrown struct {
	Val Value
}

func (t *Thrown) Error() string { return "js exception: " + ToDisplay(t.Val) }

// Obj is a mini-JS object, array, function, or error.
type Obj struct {
	// Class is "Object", "Array", "Function" or "Error".
	Class string
	Proto *Obj

	props map[string]Value
	keys  []string

	// Closure state for user functions.
	Fn  *ir.Function
	Env *Env
	// Native is set for built-in functions.
	Native *Native

	// Data optionally links the object to host state (e.g. a DOM node).
	Data any

	// Getters and Setters hold accessor properties (used by the DOM
	// emulation for live properties like innerHTML). They are consulted
	// along the prototype chain before ordinary properties and are invoked
	// with the original receiver.
	Getters map[string]NativeFunc
	Setters map[string]NativeFunc

	// Alloc is a unique allocation number, for debugging and stable display.
	Alloc int
}

// DefineGetter installs an accessor getter for name.
func (o *Obj) DefineGetter(name string, fn NativeFunc) {
	if o.Getters == nil {
		o.Getters = make(map[string]NativeFunc)
	}
	o.Getters[name] = fn
}

// DefineSetter installs an accessor setter for name.
func (o *Obj) DefineSetter(name string, fn NativeFunc) {
	if o.Setters == nil {
		o.Setters = make(map[string]NativeFunc)
	}
	o.Setters[name] = fn
}

// findGetter walks the prototype chain for an accessor getter.
func (o *Obj) findGetter(name string) (NativeFunc, bool) {
	for cur := o; cur != nil; cur = cur.Proto {
		if fn, ok := cur.Getters[name]; ok {
			return fn, true
		}
		if _, ok := cur.props[name]; ok {
			return nil, false // a data property shadows inherited accessors
		}
	}
	return nil, false
}

// findSetter walks the prototype chain for an accessor setter.
func (o *Obj) findSetter(name string) (NativeFunc, bool) {
	for cur := o; cur != nil; cur = cur.Proto {
		if fn, ok := cur.Setters[name]; ok {
			return fn, true
		}
	}
	return nil, false
}

// Get returns the own property named name and whether it exists.
func (o *Obj) Get(name string) (Value, bool) {
	v, ok := o.props[name]
	return v, ok
}

// Lookup walks the prototype chain for name.
func (o *Obj) Lookup(name string) (Value, bool) {
	for cur := o; cur != nil; cur = cur.Proto {
		if v, ok := cur.props[name]; ok {
			return v, true
		}
	}
	return UndefinedVal, false
}

// Has reports whether name exists on o or its prototype chain.
func (o *Obj) Has(name string) bool {
	_, ok := o.Lookup(name)
	return ok
}

// Set writes an own property, maintaining array length semantics.
func (o *Obj) Set(name string, v Value) {
	if o.Class == "Array" {
		if name == "length" {
			o.setArrayLength(v)
			return
		}
		if idx, ok := arrayIndex(name); ok {
			if cur := o.ArrayLength(); idx >= cur {
				o.setRaw("length", NumberVal(float64(idx+1)))
			}
		}
	}
	o.setRaw(name, v)
}

func (o *Obj) setRaw(name string, v Value) {
	if o.props == nil {
		o.props = make(map[string]Value)
	}
	if _, exists := o.props[name]; !exists {
		o.keys = append(o.keys, name)
	}
	o.props[name] = v
}

// Delete removes an own property, reporting whether it existed.
func (o *Obj) Delete(name string) bool {
	if _, ok := o.props[name]; !ok {
		return false
	}
	delete(o.props, name)
	for i, k := range o.keys {
		if k == name {
			o.keys = append(o.keys[:i], o.keys[i+1:]...)
			break
		}
	}
	return true
}

// Keys returns the own enumerable property names in insertion order.
// The returned slice is shared; callers must not modify it.
func (o *Obj) Keys() []string { return o.keys }

// OwnKeys returns a copy of the own property names in insertion order.
func (o *Obj) OwnKeys() []string {
	out := make([]string, len(o.keys))
	copy(out, o.keys)
	return out
}

// ArrayLength returns the numeric length of an array object.
func (o *Obj) ArrayLength() int {
	if v, ok := o.props["length"]; ok && v.Kind == Number {
		return int(v.N)
	}
	return 0
}

func (o *Obj) setArrayLength(v Value) {
	n := int(ToNumber(v))
	cur := o.ArrayLength()
	for i := n; i < cur; i++ {
		o.Delete(strconv.Itoa(i))
	}
	o.setRaw("length", NumberVal(float64(n)))
}

func arrayIndex(name string) (int, bool) {
	if name == "" {
		return 0, false
	}
	for _, c := range name {
		if c < '0' || c > '9' {
			return 0, false
		}
	}
	n, err := strconv.Atoi(name)
	if err != nil {
		return 0, false
	}
	return n, true
}

// Env is a runtime environment: one frame of local slots plus a link to the
// lexically enclosing environment.
type Env struct {
	Parent *Env
	Slots  []Value
	Fn     *ir.Function
}

// At walks hops parents and returns the slot.
func (e *Env) At(hops, slot int) Value {
	for i := 0; i < hops; i++ {
		e = e.Parent
	}
	return e.Slots[slot]
}

// SetAt walks hops parents and writes the slot.
func (e *Env) SetAt(hops, slot int, v Value) {
	for i := 0; i < hops; i++ {
		e = e.Parent
	}
	e.Slots[slot] = v
}

// ---------------------------------------------------------------------------
// Conversions

// ToBool applies JavaScript truthiness.
func ToBool(v Value) bool {
	switch v.Kind {
	case Undefined, Null:
		return false
	case Bool:
		return v.B
	case Number:
		return v.N != 0 && !math.IsNaN(v.N)
	case String:
		return v.S != ""
	case Object:
		return true
	}
	return false
}

// ToNumber converts per JavaScript semantics (without user-defined valueOf).
func ToNumber(v Value) float64 {
	switch v.Kind {
	case Undefined:
		return math.NaN()
	case Null:
		return 0
	case Bool:
		if v.B {
			return 1
		}
		return 0
	case Number:
		return v.N
	case String:
		s := strings.TrimSpace(v.S)
		if s == "" {
			return 0
		}
		if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
			if n, err := strconv.ParseUint(s[2:], 16, 64); err == nil {
				return float64(n)
			}
			return math.NaN()
		}
		if n, err := strconv.ParseFloat(s, 64); err == nil {
			return n
		}
		if s == "Infinity" || s == "+Infinity" {
			return math.Inf(1)
		}
		if s == "-Infinity" {
			return math.Inf(-1)
		}
		return math.NaN()
	case Object:
		p := toPrimitive(v)
		if p.Kind == Object {
			// Plain objects stay objects under toPrimitive; ToNumber of
			// "[object Object]" is NaN. Recursing instead overflowed the
			// stack. (Found by detfuzz.)
			return math.NaN()
		}
		return ToNumber(p)
	}
	return math.NaN()
}

// ToString converts per JavaScript semantics (without user-defined toString;
// arrays join their elements, other objects render as "[object Object]").
func ToString(v Value) string {
	switch v.Kind {
	case Undefined:
		return "undefined"
	case Null:
		return "null"
	case Bool:
		return strconv.FormatBool(v.B)
	case Number:
		return ast.FormatNumber(v.N)
	case String:
		return v.S
	case Object:
		p := toPrimitive(v)
		if p.Kind == Object {
			return "[object Object]"
		}
		return ToString(p)
	}
	return "?"
}

// toPrimitive converts an object to a primitive using the built-in behaviour
// of arrays, functions and errors. User-defined toString/valueOf are not
// modeled (paper §4 makes the same exclusion).
func toPrimitive(v Value) Value {
	if v.Kind != Object {
		return v
	}
	o := v.O
	switch o.Class {
	case "Array":
		n := o.ArrayLength()
		parts := make([]string, 0, n)
		for i := 0; i < n; i++ {
			el, ok := o.Get(strconv.Itoa(i))
			if !ok || el.Kind == Undefined || el.Kind == Null {
				parts = append(parts, "")
			} else {
				parts = append(parts, ToString(el))
			}
		}
		return StringVal(strings.Join(parts, ","))
	case "Function":
		name := ""
		if o.Fn != nil {
			name = o.Fn.Name
		} else if o.Native != nil {
			name = o.Native.Name
		}
		return StringVal("function " + name + "() { [native or user code] }")
	case "Error":
		name := "Error"
		if v, ok := o.Lookup("name"); ok {
			name = ToString(v)
		}
		msg := ""
		if v, ok := o.Lookup("message"); ok {
			msg = ToString(v)
		}
		if msg == "" {
			return StringVal(name)
		}
		return StringVal(name + ": " + msg)
	default:
		return v // callers map this to "[object Object]" / NaN
	}
}

// ToInt32 converts per the ECMAScript ToInt32 abstract operation.
func ToInt32(v Value) int32 {
	n := ToNumber(v)
	if math.IsNaN(n) || math.IsInf(n, 0) {
		return 0
	}
	return int32(uint32(int64(n)))
}

// ToUint32 converts per the ECMAScript ToUint32 abstract operation.
func ToUint32(v Value) uint32 {
	n := ToNumber(v)
	if math.IsNaN(n) || math.IsInf(n, 0) {
		return 0
	}
	return uint32(int64(n))
}

// StrictEquals implements ===.
func StrictEquals(a, b Value) bool {
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case Undefined, Null:
		return true
	case Bool:
		return a.B == b.B
	case Number:
		return a.N == b.N // NaN != NaN holds via float comparison
	case String:
		return a.S == b.S
	case Object:
		return a.O == b.O
	}
	return false
}

// LooseEquals implements ==.
func LooseEquals(a, b Value) bool {
	if a.Kind == b.Kind {
		return StrictEquals(a, b)
	}
	switch {
	case (a.Kind == Null && b.Kind == Undefined) || (a.Kind == Undefined && b.Kind == Null):
		return true
	case a.Kind == Number && b.Kind == String:
		return a.N == ToNumber(b)
	case a.Kind == String && b.Kind == Number:
		return ToNumber(a) == b.N
	case a.Kind == Bool:
		return LooseEquals(NumberVal(ToNumber(a)), b)
	case b.Kind == Bool:
		return LooseEquals(a, NumberVal(ToNumber(b)))
	case a.Kind == Object && (b.Kind == Number || b.Kind == String):
		return LooseEquals(toPrimitive(a), b)
	case b.Kind == Object && (a.Kind == Number || a.Kind == String):
		return LooseEquals(a, toPrimitive(b))
	}
	return false
}

// TypeOf implements the typeof operator.
func TypeOf(v Value) string {
	switch v.Kind {
	case Undefined:
		return "undefined"
	case Null:
		return "object"
	case Bool:
		return "boolean"
	case Number:
		return "number"
	case String:
		return "string"
	case Object:
		if v.IsCallable() {
			return "function"
		}
		return "object"
	}
	return "undefined"
}

// ToDisplay renders a value for console output and diagnostics.
func ToDisplay(v Value) string {
	if v.Kind == String {
		return v.S
	}
	if v.Kind == Object && v.O.Class == "Object" {
		var b strings.Builder
		b.WriteString("{")
		for i, k := range v.O.keys {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s: %s", k, shortDisplay(v.O.props[k]))
		}
		b.WriteString("}")
		return b.String()
	}
	if v.Kind == Object && v.O.Class == "Array" {
		var b strings.Builder
		b.WriteString("[")
		n := v.O.ArrayLength()
		for i := 0; i < n; i++ {
			if i > 0 {
				b.WriteString(", ")
			}
			el, _ := v.O.Get(strconv.Itoa(i))
			b.WriteString(shortDisplay(el))
		}
		b.WriteString("]")
		return b.String()
	}
	return ToString(v)
}

func shortDisplay(v Value) string {
	if v.Kind == String {
		return ast.QuoteString(v.S)
	}
	if v.Kind == Object {
		switch v.O.Class {
		case "Array":
			return "[...]"
		case "Function":
			return "function"
		default:
			return "{...}"
		}
	}
	return ToString(v)
}
