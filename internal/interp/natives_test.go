package interp_test

import (
	"testing"

	"determinacy/internal/interp"
)

func optsWithNow(now float64) interp.Options {
	return interp.Options{Now: now}
}

func TestArrayNatives(t *testing.T) {
	expectLines(t, `
		var a = [3, 1, 2];
		console.log(a.shift(), a.join("+"));
		a.push(9, 10);
		console.log(a.length);
		console.log([1].concat([2, 3], 4).join(","));
		console.log([1, 2, 3].filter(function(x) { return x !== 2; }).join(","));
		var sum = 0;
		[5, 6].forEach(function(x, i) { sum += x * (i + 1); });
		console.log(sum);
		console.log(Array.isArray([]), Array.isArray({}));
		console.log(new Array(3).length);
		console.log([10, 20, 30].slice(-2).join(","));
	`,
		"3 1+2", "4", "1,2,3,4", "1,3", "17", "true false", "3", "20,30")
}

func TestStringNativesEdgeCases(t *testing.T) {
	expectLines(t, `
		console.log("abc".charAt(5), "abc".charAt(-1));
		console.log("abc".charCodeAt(0));
		console.log("a,b,,c".split(",").length);
		console.log("abc".split("").join("|"));
		console.log("  pad  ".trim());
		console.log("hello".substring(3, 1));
		console.log("hello".substr(-3, 2));
		console.log("aXbXc".replace("X", "-"));
		console.log("a".concat("b", 1, true));
		console.log(String.fromCharCode(72, 105));
		console.log(String(42), String(null));
	`,
		" ", "97", "4", "a|b|c", "pad", "el", "ll", "a-bXc", "ab1true", "Hi", "42 null")
}

func TestMathNatives(t *testing.T) {
	expectLines(t, `
		console.log(Math.max(1, 9, 3), Math.min(4, -2));
		console.log(Math.abs(-5), Math.floor(2.9), Math.ceil(2.1), Math.round(2.5));
		console.log(Math.pow(2, 10), Math.sqrt(81));
		console.log(isNaN(Math.max(1, NaN)));
		console.log(Math.PI > 3.14 && Math.PI < 3.15);
	`,
		"9 -2", "5 2 3 3", "1024 9", "true", "true")
}

func TestParseIntFloat(t *testing.T) {
	expectLines(t, `
		console.log(parseInt("42px"));
		console.log(parseInt("ff", 16), parseInt("0x1A", 16));
		console.log(parseInt("-8"));
		console.log(isNaN(parseInt("px")));
		console.log(parseFloat("3.14 is pi"));
		console.log(isNaN(parseFloat("pi")));
	`,
		"42", "255 26", "-8", "true", "3.14", "true")
}

func TestObjectNatives(t *testing.T) {
	expectLines(t, `
		var o = {b: 2, a: 1};
		console.log(Object.keys(o).join(","));
		console.log(o.hasOwnProperty("a"), o.hasOwnProperty("z"));
		console.log(Object.keys([7, 8]).join(","));
		var child = Object.create(o);
		console.log(child.a, child.hasOwnProperty("a"));
		console.log(Object.getPrototypeOf(child) === o);
	`,
		"b,a", "true false", "0,1", "1 false", "true")
}

func TestNumberFormattingNatives(t *testing.T) {
	expectLines(t, `
		console.log((255).toString(16));
		console.log((3.14159).toFixed(2));
		console.log((42).toString());
		console.log(Number("12") + Number(true));
	`,
		"ff", "3.14", "42", "13")
}

func TestErrorConstructors(t *testing.T) {
	expectLines(t, `
		var e = new TypeError("bad type");
		console.log(e.name, e.message);
		console.log(e instanceof TypeError);
		try {
			null.x;
		} catch (te) {
			console.log(te.name);
		}
		try {
			missingGlobal;
		} catch (re) {
			console.log(re.name);
		}
		try {
			(5)();
		} catch (ce) {
			console.log(ce.name);
		}
	`,
		"TypeError bad type", "true", "TypeError", "ReferenceError", "TypeError")
}

func TestIndirectEvalGlobalScope(t *testing.T) {
	expectLines(t, `
		var g = 7;
		var e = eval;
		function f() {
			var local = 99;
			return e("g + 1"); // indirect eval: global scope, no locals
		}
		console.log(f());
	`,
		"8")
}

func TestDateNow(t *testing.T) {
	got := runOpts(t, `console.log(Date.now());`, optsWithNow(1234))
	if got != "1234\n" {
		t.Errorf("Date.now: %q", got)
	}
}

func TestGlobalConstants(t *testing.T) {
	expectLines(t, `
		console.log(typeof NaN, isNaN(NaN));
		console.log(Infinity > 1e308);
		console.log(typeof globalThis);
	`,
		"number true", "true", "object")
}
