package clitest

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestDetserveClusterFlagValidation pins the fleet flags to the exit-code
// contract: malformed -peers topology (bad JSON, bad URLs, a self that is
// not in the peer map, unknown fields, a missing @file) and a negative
// -drain-timeout are usage errors (exit 2 with a diagnostic on stderr),
// never a node that joins a ring it misparsed.
func TestDetserveClusterFlagValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	bin := build(t, dir, "detserve")

	cases := [][]string{
		{"-peers", `{not json`},
		{"-peers", `{"self":"a"}`},                                                // no peers map
		{"-peers", `{"peers":{"a":"http://127.0.0.1:1"}}`},                        // no self
		{"-peers", `{"self":"a","peers":{"b":"http://127.0.0.1:1"}}`},             // self not in peers
		{"-peers", `{"self":"a","peers":{"a":"ftp://127.0.0.1:1"}}`},              // non-http scheme
		{"-peers", `{"self":"a","peers":{"a":"not a url"}}`},                      // unparseable URL
		{"-peers", `{"self":"a","peers":{"bad name!":"http://127.0.0.1:1"}}`},     // hostile peer name
		{"-peers", `{"self":"a","vnodes":-1,"peers":{"a":"http://127.0.0.1:1"}}`}, // negative vnodes
		{"-peers", `{"self":"a","peers":{"a":"http://127.0.0.1:1"},"extra":1}`},   // unknown field
		{"-peers", "@" + filepath.Join(dir, "no-such-peers.json")},
		{"-drain-timeout", "-1s"},
	}
	for _, args := range cases {
		cmd := exec.Command(bin, args...)
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		err := cmd.Run()
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Errorf("detserve %v: expected a usage failure, got %v", args, err)
			continue
		}
		if code := ee.ExitCode(); code != 2 {
			t.Errorf("detserve %v: exit code %d, want 2\nstderr: %s", args, code, stderr.String())
		}
		if stderr.Len() == 0 {
			t.Errorf("detserve %v: no diagnostic on stderr", args)
		}
	}
}

// TestDetserveClusterFlagsAccepted starts detserve as a named cluster
// node (topology via @file, like production) with an explicit
// -drain-timeout, then drains it with SIGTERM: the flags parse, the node
// reports its peers, and the process exits 0 through the graceful-drain
// path even though its only peer never existed.
func TestDetserveClusterFlagsAccepted(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	bin := build(t, dir, "detserve")
	peers := filepath.Join(dir, "peers.json")
	topo := `{"self":"a","peers":{"a":"http://127.0.0.1:1","b":"http://127.0.0.1:2"}}`
	if err := os.WriteFile(peers, []byte(topo), 0o644); err != nil {
		t.Fatal(err)
	}

	logPath := filepath.Join(dir, "detserve.log")
	logFile, err := os.Create(logPath)
	if err != nil {
		t.Fatal(err)
	}
	defer logFile.Close()
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-peers", "@"+peers,
		"-drain-timeout", "2s")
	cmd.Stdout, cmd.Stderr = logFile, logFile
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	output := func() string {
		b, _ := os.ReadFile(logPath)
		return string(b)
	}
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) && !strings.Contains(output(), "listening on") {
		time.Sleep(20 * time.Millisecond)
	}
	if !strings.Contains(output(), "listening on") {
		_ = cmd.Process.Kill()
		t.Fatalf("detserve never reported listening; output:\n%s", output())
	}
	if !strings.Contains(output(), `cluster node "a"`) {
		_ = cmd.Process.Kill()
		t.Fatalf("detserve did not report its cluster identity; output:\n%s", output())
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("detserve cluster node exited non-zero: %v\noutput:\n%s", err, output())
	}
}
