package clitest

import (
	"bytes"
	"os"
	"os/exec"
	"strings"
	"testing"

	"determinacy/internal/cliexit"
)

// TestExitCodeTableDistinctAndDocumented checks the canonical table
// itself: every command documents codes 0-2, every code is distinct
// within its command, and every row has a meaning.
func TestExitCodeTableDistinctAndDocumented(t *testing.T) {
	if len(cliexit.Commands) != len(cliexit.Tables) {
		t.Fatalf("Commands lists %d tools, Tables documents %d", len(cliexit.Commands), len(cliexit.Tables))
	}
	for _, cmd := range cliexit.Commands {
		rows, ok := cliexit.Tables[cmd]
		if !ok {
			t.Errorf("%s: listed in Commands but has no table", cmd)
			continue
		}
		if dup, distinct := cliexit.Distinct(cmd); !distinct {
			t.Errorf("%s: exit code %d documented twice", cmd, dup)
		}
		codes := map[int]bool{}
		for _, r := range rows {
			codes[r.Code] = true
			if strings.TrimSpace(r.Meaning) == "" {
				t.Errorf("%s: code %d has no meaning", cmd, r.Code)
			}
			if r.Code < 0 || r.Code > 255 {
				t.Errorf("%s: code %d outside the portable exit-status range", cmd, r.Code)
			}
		}
		for _, want := range []int{cliexit.OK, cliexit.Error, cliexit.Usage} {
			if !codes[want] {
				t.Errorf("%s: shared code %d undocumented", cmd, want)
			}
		}
	}
}

// TestExitCodeTableMatchesReadme pins the README "Exit codes" section to
// MarkdownTable(): the docs embed the rendered table verbatim, so a code
// or meaning change here fails until the README is updated to match.
func TestExitCodeTableMatchesReadme(t *testing.T) {
	readme, err := os.ReadFile("../../README.md")
	if err != nil {
		t.Fatalf("reading README.md: %v", err)
	}
	want := cliexit.MarkdownTable()
	if !strings.Contains(string(readme), want) {
		t.Fatalf("README.md does not embed the canonical exit-code table verbatim.\n"+
			"Paste this into the \"Exit codes\" section:\n\n%s", want)
	}
}

// TestVersionFlag builds every CLI and checks -version prints the command
// name plus a build identity (exit 0, no analysis side effects).
func TestVersionFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	for _, name := range cliexit.Commands {
		bin := build(t, dir, name)
		cmd := exec.Command(bin, "-version")
		var stdout, stderr bytes.Buffer
		cmd.Stdout, cmd.Stderr = &stdout, &stderr
		if err := cmd.Run(); err != nil {
			t.Errorf("%s -version: %v\nstderr: %s", name, err, stderr.String())
			continue
		}
		out := stdout.String()
		if !strings.HasPrefix(out, name+" ") {
			t.Errorf("%s -version output %q, want %q prefix", name, out, name+" ")
		}
		if !strings.Contains(out, "go") {
			t.Errorf("%s -version output %q carries no toolchain identity", name, out)
		}
	}
}

// TestUsageListsExitCodes checks every CLI's -help output carries its
// exit-code table, so `tool -help` and the README never disagree.
func TestUsageListsExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	for _, name := range cliexit.Commands {
		bin := build(t, dir, name)
		cmd := exec.Command(bin, "-help")
		var combined bytes.Buffer
		cmd.Stdout, cmd.Stderr = &combined, &combined
		_ = cmd.Run() // flag's -help exits 0 or 2 depending on Go version; text is what matters
		if !strings.Contains(combined.String(), cliexit.UsageText(name)) {
			t.Errorf("%s -help does not include its exit-code table; got:\n%s", name, combined.String())
		}
	}
}
