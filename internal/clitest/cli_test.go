// Package clitest builds the command-line binaries and exercises their flag
// validation: nonsensical numeric flags must produce a usage error (exit
// code 2) and a diagnostic on stderr, not a hang, panic, or silent clamp.
package clitest

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// build compiles a command into dir and returns the binary path.
func build(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, "determinacy/cmd/"+name)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

func TestRejectNonsensicalFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	js := filepath.Join(dir, "prog.js")
	if err := os.WriteFile(js, []byte("var x = 1 + 2;\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		cmd  string
		args []string
	}{
		{"detrun", []string{"-runs", "0", js}},
		{"detrun", []string{"-runs", "-3", js}},
		{"detrun", []string{"-max-flushes", "-1", js}},
		{"detrun", []string{"-handlers", "-1", js}},
		{"detspec", []string{"-runs", "0", js}},
		{"detspec", []string{"-workers", "-1", js}},
		{"detspec", []string{"-max-unroll", "-1", js}},
		{"detspec", []string{"-clone-depth", "-1", js}},
		{"detbench", []string{"-table1", "-workers", "-1"}},
		{"detbench", []string{"-table1", "-budget", "-1"}},
		{"detfuzz", []string{"-seeds", "0"}},
		{"detfuzz", []string{"-resolutions", "0"}},
		{"detfuzz", []string{"-workers", "-1"}},
		{"detrun", []string{"-timeout", "-1s", js}},
		{"detspec", []string{"-timeout", "-1s", js}},
		{"detbench", []string{"-table1", "-timeout", "-1s"}},
		{"detfuzz", []string{"-timeout", "-1s"}},
	}

	bins := map[string]string{}
	for _, c := range cases {
		if _, ok := bins[c.cmd]; !ok {
			bins[c.cmd] = build(t, dir, c.cmd)
		}
	}

	for _, c := range cases {
		cmd := exec.Command(bins[c.cmd], c.args...)
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		err := cmd.Run()
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Errorf("%s %v: expected a usage failure, got %v", c.cmd, c.args, err)
			continue
		}
		if code := ee.ExitCode(); code != 2 {
			t.Errorf("%s %v: exit code %d, want 2\nstderr: %s", c.cmd, c.args, code, stderr.String())
		}
		if stderr.Len() == 0 {
			t.Errorf("%s %v: no diagnostic on stderr", c.cmd, c.args)
		}
	}

	// Sane flags must still work end to end.
	good := exec.Command(bins["detrun"], "-runs", "2", js)
	if out, err := good.CombinedOutput(); err != nil {
		t.Errorf("detrun with valid flags failed: %v\n%s", err, out)
	}

	// A timeout expiring mid-analysis degrades gracefully: exit code 7,
	// a partial-result note on stderr, and no panic output.
	long := filepath.Join(dir, "long.js")
	src := "var acc = 0;\nvar i = 0;\nwhile (i < 200000) { acc = acc + i; i = i + 1; }\n"
	if err := os.WriteFile(long, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	slow := exec.Command(bins["detrun"], "-timeout", "30ms", long)
	var stderr bytes.Buffer
	slow.Stderr = &stderr
	err := slow.Run()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("detrun -timeout on a long program: expected exit 7, got %v\nstderr: %s", err, stderr.String())
	}
	if code := ee.ExitCode(); code != 7 {
		t.Errorf("detrun -timeout exit code = %d, want 7\nstderr: %s", code, stderr.String())
	}
	if !bytes.Contains(stderr.Bytes(), []byte("partial")) {
		t.Errorf("no partial-result note on stderr: %s", stderr.String())
	}
	if bytes.Contains(stderr.Bytes(), []byte("goroutine")) {
		t.Errorf("stderr looks like a panic dump: %s", stderr.String())
	}
}
