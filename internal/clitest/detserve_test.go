package clitest

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestDetserveSchedulerFlagValidation pins the serving CLI's admission
// flags to the exit-code contract: a bad -scheduler, malformed or missing
// -tenants config, and a negative -stream-heartbeat are usage errors
// (exit 2 with a diagnostic on stderr), never a listener that starts with
// a half-applied config.
func TestDetserveSchedulerFlagValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	bin := build(t, dir, "detserve")

	cases := [][]string{
		{"-scheduler", "bogus"},
		{"-scheduler", "WFQ"}, // policies are lowercase tokens, not case-folded
		{"-tenants", `{not json`},
		{"-tenants", `{"pro":{"weight":-1}}`},
		{"-tenants", `{"pro":{"weight":1,"tier":"x"}}`}, // unknown field
		{"-tenants", `{"bulk":{"class":"warp-speed"}}`},
		{"-tenants", "@" + filepath.Join(dir, "no-such-tenants.json")},
		{"-stream-heartbeat", "-1s"},
	}
	for _, args := range cases {
		cmd := exec.Command(bin, args...)
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		err := cmd.Run()
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Errorf("detserve %v: expected a usage failure, got %v", args, err)
			continue
		}
		if code := ee.ExitCode(); code != 2 {
			t.Errorf("detserve %v: exit code %d, want 2\nstderr: %s", args, code, stderr.String())
		}
		if stderr.Len() == 0 {
			t.Errorf("detserve %v: no diagnostic on stderr", args)
		}
	}
}

// TestDetserveSchedulerFlagsAccepted starts detserve with a weighted-fair
// two-tenant config (tenants via @file) and a heartbeat override, then
// drains it with SIGTERM: the flags parse, the server comes up, and the
// process exits 0 through the graceful-drain path.
func TestDetserveSchedulerFlagsAccepted(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	bin := build(t, dir, "detserve")
	tenants := filepath.Join(dir, "tenants.json")
	if err := os.WriteFile(tenants, []byte(`{"free":{"weight":1},"pro":{"weight":4},"*":{"weight":1}}`), 0o644); err != nil {
		t.Fatal(err)
	}

	// Child output goes to a file the child writes directly (no in-process
	// copier goroutine to race with the polling reads below).
	logPath := filepath.Join(dir, "detserve.log")
	logFile, err := os.Create(logPath)
	if err != nil {
		t.Fatal(err)
	}
	defer logFile.Close()
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-scheduler", "wfq",
		"-tenants", "@"+tenants,
		"-stream-heartbeat", "5s",
		"-drain", "2s")
	cmd.Stdout, cmd.Stderr = logFile, logFile
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	// Wait for the listening log line, then ask for a graceful drain.
	output := func() string {
		b, _ := os.ReadFile(logPath)
		return string(b)
	}
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) && !strings.Contains(output(), "listening on") {
		time.Sleep(20 * time.Millisecond)
	}
	if !strings.Contains(output(), "listening on") {
		_ = cmd.Process.Kill()
		t.Fatalf("detserve never reported listening; output:\n%s", output())
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("detserve with wfq tenant config exited non-zero: %v\noutput:\n%s", err, output())
	}
}
