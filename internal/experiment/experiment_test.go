package experiment_test

import (
	"strings"
	"testing"

	"determinacy/internal/experiment"
	"determinacy/internal/workload"
)

// TestTable1Shape pins the reproduced Table 1 against the paper's published
// outcomes: which configurations complete, and the relative magnitude of
// the dynamic analysis' heap flush counts.
//
//	Version  Baseline  Spec        Spec+DetDOM     (paper)
//	1.0      ✗         ✓ (82)      ✓ (2)
//	1.1      ✗         ✗ (107)     ✓ (4)
//	1.2      ✓         ✓ (>1000)   ✓ (0)
//	1.3      ✗         ✗ (>1000)   ✗ (>1000)
func TestTable1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("table 1 takes a few seconds")
	}
	rows := experiment.RunTable1(experiment.Config{})
	byVersion := map[workload.JQueryVersion]experiment.Table1Row{}
	for _, r := range rows {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Version, r.Err)
		}
		byVersion[r.Version] = r
	}

	type want struct {
		base, spec, detdom bool // completed?
	}
	wants := map[workload.JQueryVersion]want{
		workload.JQ10: {base: false, spec: true, detdom: true},
		workload.JQ11: {base: false, spec: false, detdom: true},
		workload.JQ12: {base: true, spec: true, detdom: true},
		workload.JQ13: {base: false, spec: false, detdom: false},
	}
	for v, w := range wants {
		r := byVersion[v]
		if r.Baseline.Completed != w.base {
			t.Errorf("%s baseline completed=%v, paper has %v", v, r.Baseline.Completed, w.base)
		}
		if r.Spec.Completed != w.spec {
			t.Errorf("%s spec completed=%v, paper has %v", v, r.Spec.Completed, w.spec)
		}
		if r.DetDOM.Completed != w.detdom {
			t.Errorf("%s spec+detdom completed=%v, paper has %v", v, r.DetDOM.Completed, w.detdom)
		}
	}

	// Flush-count shape (not absolute values): DetDOM drastically reduces
	// flushes for 1.0/1.1; 1.2 and 1.3 hit the cap without DetDOM; 1.3
	// stays capped even with it; 1.2 reaches (near) zero with it.
	r10, r11, r12, r13 := byVersion[workload.JQ10], byVersion[workload.JQ11], byVersion[workload.JQ12], byVersion[workload.JQ13]
	if r10.DetDOM.Flushes >= r10.Spec.Flushes/10 {
		t.Errorf("1.0: DetDOM flushes %d not ≪ Spec flushes %d", r10.DetDOM.Flushes, r10.Spec.Flushes)
	}
	if r11.DetDOM.Flushes >= r11.Spec.Flushes/10 {
		t.Errorf("1.1: DetDOM flushes %d not ≪ Spec flushes %d", r11.DetDOM.Flushes, r11.Spec.Flushes)
	}
	if !r12.Spec.FlushLimit {
		t.Errorf("1.2: Spec should hit the flush cap, got %d", r12.Spec.Flushes)
	}
	if r12.DetDOM.Flushes > 4 {
		t.Errorf("1.2: DetDOM flushes should be ~0, got %d", r12.DetDOM.Flushes)
	}
	if !r13.Spec.FlushLimit || !r13.DetDOM.FlushLimit {
		t.Errorf("1.3: both Spec and DetDOM should hit the flush cap")
	}

	// The headline speedup: specialization cuts the points-to work on 1.0
	// by a large factor.
	if r10.Spec.Propagations*4 >= r10.Baseline.Propagations {
		t.Errorf("1.0: specialized points-to (%d) not clearly cheaper than baseline (%d)",
			r10.Spec.Propagations, r10.Baseline.Propagations)
	}
}

// TestEvalStudyCounts pins the §5.2 reproduction against the paper's
// numbers: 28 benchmarks, 24 runnable, 14 fully specialized (20 with the
// determinate-DOM assumption), and the failure taxonomy 1 indeterminate
// argument / 4 not covered / 1 indeterminate callee / 4 loop bounds.
func TestEvalStudyCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("eval study takes a few seconds")
	}
	s := experiment.RunEvalStudy(false, experiment.Config{})
	if s.Total != 28 {
		t.Errorf("total benchmarks = %d, want 28", s.Total)
	}
	if s.Runnable != 24 {
		t.Errorf("runnable = %d, want 24 (paper disregards 4)", s.Runnable)
	}
	if s.Handled != 14 {
		t.Errorf("fully specialized = %d, want 14", s.Handled)
	}
	wantReasons := map[string]int{
		"indeterminate-argument":   1,
		"not-covered":              4,
		"indeterminate-callee":     1,
		"indeterminate-loop-bound": 4,
	}
	for reason, n := range wantReasons {
		if s.ByReason[reason] != n {
			t.Errorf("failures[%s] = %d, want %d", reason, s.ByReason[reason], n)
		}
	}
	if s.OnlyOurs < 6 {
		t.Errorf("handled beyond the syntactic baseline = %d, want >= 6 (paper: 6)", s.OnlyOurs)
	}

	det := experiment.RunEvalStudy(true, experiment.Config{})
	if det.Handled != 20 {
		t.Errorf("fully specialized with DetDOM = %d, want 20", det.Handled)
	}
	for _, o := range append(s.Benchmarks, det.Benchmarks...) {
		if o.Err != nil {
			t.Errorf("benchmark %s errored: %v", o.Name, o.Err)
		}
	}
}

// TestSpecializedJQueryStillRuns checks semantic preservation end to end:
// the specialized jQuery 1.0 workload must execute without errors under the
// concrete interpreter and DOM.
func TestSpecializedJQueryStillRuns(t *testing.T) {
	dyn, err := experiment.RunDynamic(workload.JQuery(workload.JQ10), false, experiment.Config{})
	if err != nil || dyn.RunErr != nil {
		t.Fatalf("dynamic: %v / %v", err, dyn.RunErr)
	}
	if dyn.Stats.HeapFlushes == 0 {
		t.Error("expected some heap flushes on the conservative DOM")
	}
}

func TestFormatters(t *testing.T) {
	rows := []experiment.Table1Row{{
		Version:  workload.JQ10,
		Baseline: experiment.Table1Cell{Completed: false, Propagations: 60001},
		Spec:     experiment.Table1Cell{Completed: true, Flushes: 281},
		DetDOM:   experiment.Table1Cell{Completed: true, Flushes: 1},
	}}
	out := experiment.FormatTable1(rows)
	for _, want := range []string{"1.0", "FAIL", "ok (281)", "ok (1)"} {
		if !containsStr(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}

	study := &experiment.EvalStudy{
		Total: 28, Runnable: 24, Handled: 14, OnlyOurs: 7,
		ByReason: map[string]int{"not-covered": 4},
		Benchmarks: []experiment.EvalOutcome{
			{Name: "x", Runnable: true, Handled: true},
			{Name: "y", Runnable: true, Handled: false, Reason: "not-covered"},
			{Name: "z", Runnable: false},
		},
	}
	sout := experiment.FormatEvalStudy(study)
	for _, want := range []string{"14 of 24", "not-covered", "excluded (not runnable)", "handled"} {
		if !containsStr(sout, want) {
			t.Errorf("study missing %q:\n%s", want, sout)
		}
	}

	cell := experiment.Table1Cell{FlushLimit: true, Flushes: 1001}
	if cell.FlushStr() != ">1000" {
		t.Errorf("FlushStr = %q", cell.FlushStr())
	}
}

func containsStr(haystack, needle string) bool {
	return strings.Contains(haystack, needle)
}
