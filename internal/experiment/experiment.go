// Package experiment reproduces the paper's evaluation (§5): Table 1
// (pointer-analysis scalability on the jQuery-style workloads) and the §5.2
// eval-elimination study on the 28-program corpus. cmd/detbench prints the
// results; bench_test.go wraps them as Go benchmarks; EXPERIMENTS.md records
// paper-vs-measured outcomes.
package experiment

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"time"

	"determinacy/internal/ast"
	"determinacy/internal/batch"
	"determinacy/internal/batch/progcache"
	"determinacy/internal/core"
	"determinacy/internal/dom"
	"determinacy/internal/factcache"
	"determinacy/internal/facts"
	"determinacy/internal/ir"
	"determinacy/internal/obs"
	"determinacy/internal/parser"
	"determinacy/internal/pointsto"
	"determinacy/internal/specialize"
	"determinacy/internal/vm"
	"determinacy/internal/workload"
)

// Config tunes the experiments.
type Config struct {
	// Budget is the points-to work budget standing in for the paper's
	// 10-minute timeout. 0 means the default of 2,000,000 propagations.
	Budget int
	// MaxFlushes stops the dynamic analysis (paper: 1000).
	MaxFlushes int
	// HandlerLimit bounds DOM event handler invocations per run.
	HandlerLimit int
	// Seed drives the runs' PRNG.
	Seed uint64
	// Tracer observes every dynamic run and solver invocation performed by
	// the experiments. nil disables tracing.
	Tracer obs.Tracer
	// Workers bounds how many independent experiment jobs (Table 1 cells,
	// eval-study benchmarks) run concurrently (0 = GOMAXPROCS, 1 = strictly
	// serial). Results are collected in submission order, so every output —
	// rows, study counts, formatted tables — is byte-identical across
	// settings.
	Workers int
	// Cache is the shared compilation cache; when nil, withDefaults
	// installs a fresh one, so the baseline/spec/detdom cells of one
	// jQuery version compile its source once.
	Cache *progcache.Cache
	// Metrics, when non-nil, additionally receives pool utilization
	// (batch_pool_*) and compile-cache hit-rate (progcache_*) series.
	Metrics *obs.Metrics
	// Ctx cancels the whole study cooperatively: in-flight cells stop at
	// their next interpreter/solver checkpoint and unstarted cells are
	// skipped with a ctx-wrapped error in their row. nil means no
	// cancellation.
	Ctx context.Context
	// Deadline bounds each cell's dynamic run and solve by wall clock
	// (zero = none).
	Deadline time.Time
	// Engine selects the instrumented execution engine (bytecode when
	// zero). Both engines produce identical rows and statistics; the
	// choice only moves wall-clock time.
	Engine vm.Engine
	// FactCache, when non-nil, memoizes completed dynamic runs in the
	// on-disk fact database (L2 under the compile cache): repeated
	// experiment sweeps over the same workloads serve facts, statistics and
	// handler counts from cache, byte-identical to a cold run. Runs stopped
	// at the flush cap (or failing outright) never populate it.
	FactCache *factcache.Cache
}

func (c Config) withDefaults() Config {
	if c.Budget == 0 {
		// Sits well above the cost of analyzing the specialized programs
		// (~9k propagation events) and well below the reflective blowup of
		// the unspecialized ones (~300k); see EXPERIMENTS.md.
		c.Budget = 60_000
	}
	if c.MaxFlushes == 0 {
		c.MaxFlushes = 1000
	}
	if c.HandlerLimit == 0 {
		c.HandlerLimit = 8
	}
	if c.Cache == nil {
		c.Cache = progcache.New(0).WithMetrics(c.Metrics)
	}
	return c
}

// pool builds the worker pool used by one study run.
func (c Config) pool() *batch.Pool {
	return batch.New(c.Workers).WithMetrics(c.Metrics)
}

// compile routes front-end work through the shared cache.
func (c Config) compile(file, src string) (*ast.Program, *ir.Module, error) {
	if c.Cache != nil {
		return c.Cache.Compile(file, src)
	}
	prog, err := parser.Parse(file, src)
	if err != nil {
		return nil, nil, err
	}
	mod, err := ir.Lower(prog)
	if err != nil {
		return nil, nil, err
	}
	return prog, mod, nil
}

// DynamicRun is the result of one instrumented execution against the DOM.
type DynamicRun struct {
	Prog        *ast.Program
	Mod         *ir.Module
	Store       *facts.Store
	Stats       core.Stats
	FlushLimit  bool // the run was stopped at the flush cap
	RunErr      error
	HandlersRan int
}

// experimentNow is the fixed Date.now the experiments run under: the
// PLDI'13 week; any fixed instant works.
const experimentNow = 1371161337000

// dynamicSig is the fact-cache signature of one experiment dynamic run.
func dynamicSig(detDOM bool, cfg Config) factcache.Sig {
	return factcache.Sig{
		Seed:        cfg.Seed,
		NowBits:     factcache.NumSigBits(experimentNow),
		WithDOM:     true,
		DetDOM:      detDOM,
		RunHandlers: cfg.HandlerLimit,
		MaxFlushes:  cfg.MaxFlushes,
	}
}

// discardCapture tees the (discarded) console output into a bounded buffer
// so a cached run replays it; see factcache.MaxOutputBytes.
type discardCapture struct {
	b        []byte
	overflow bool
}

func (w *discardCapture) Write(p []byte) (int, error) {
	if len(w.b)+len(p) > factcache.MaxOutputBytes {
		w.overflow = true
	} else {
		w.b = append(w.b, p...)
	}
	return len(p), nil
}

// RunDynamic executes src under the instrumented interpreter with the DOM
// emulation, driving registered event handlers afterwards. With
// cfg.FactCache set, a completed run (no error, no flush-cap stop, no
// runtime eval) is memoized and an identical re-submission is served from
// the cache byte-identically.
func RunDynamic(src string, detDOM bool, cfg Config) (*DynamicRun, error) {
	cfg = cfg.withDefaults()
	prog, mod, err := cfg.compile("workload.js", src)
	if err != nil {
		return nil, fmt.Errorf("compile: %w", err)
	}

	var (
		key     factcache.Key
		rec     *factcache.Recorder
		capture *discardCapture
	)
	coreOut := io.Writer(io.Discard)
	if cfg.FactCache != nil {
		key = factcache.KeyFor("workload.js", src, dynamicSig(detDOM, cfg))
		if hit, ok := cfg.FactCache.Lookup(key); ok {
			return &DynamicRun{
				Prog: prog, Mod: mod, Store: hit.Store,
				Stats: hit.Stats, HandlersRan: hit.HandlersRan,
			}, nil
		}
		cfg.FactCache.Diff(key, mod)
		rec = factcache.NewRecorder()
		capture = &discardCapture{}
		coreOut = capture
	}

	staticInstrs := mod.NumInstrs
	store := facts.NewStore()
	coreOpts := core.Options{
		Seed:       cfg.Seed,
		Now:        experimentNow,
		MaxFlushes: cfg.MaxFlushes,
		Out:        coreOut,
		Tracer:     cfg.Tracer,
		Ctx:        cfg.Ctx,
		Deadline:   cfg.Deadline,
		Engine:     cfg.Engine,
		Metrics:    cfg.Metrics,
	}
	if rec != nil {
		coreOpts.OnEnterFunc = rec.OnEnter
	}
	a := core.New(mod, store, coreOpts)
	doc := dom.NewDocument(dom.Options{})
	binding := dom.InstallCore(a, doc, detDOM)

	out := &DynamicRun{Prog: prog, Mod: mod, Store: store}
	_, runErr := a.Run()
	if runErr == nil || errors.Is(runErr, core.ErrFlushLimit) {
		n, herr := binding.RunHandlers(cfg.HandlerLimit)
		out.HandlersRan = n
		// Handler-phase engine counters publish as a delta on top of Run's
		// own publish (see core.PublishEngineMetrics).
		a.PublishEngineMetrics()
		if runErr == nil {
			runErr = herr
		}
	}
	if errors.Is(runErr, core.ErrFlushLimit) {
		out.FlushLimit = true
		runErr = nil
	}
	out.RunErr = runErr
	out.Stats = a.Stats()

	if cfg.FactCache != nil {
		switch {
		case out.RunErr != nil:
			cfg.FactCache.Skip("error")
		case out.FlushLimit:
			// A flush-cap stop is a partial execution: its facts are sound
			// but not what an uncapped run produces — never cache it.
			cfg.FactCache.Skip("partial")
		case mod.NumInstrs > staticInstrs:
			cfg.FactCache.Skip("eval")
		case capture.overflow:
			cfg.FactCache.Skip("output-cap")
		default:
			cfg.FactCache.Store(key, mod, store, rec, capture.b, out.Stats, out.HandlersRan)
		}
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Table 1

// Table1Cell is one configuration outcome: completed-within-budget plus the
// dynamic analysis' heap flush count (the parenthesized numbers in Table 1).
type Table1Cell struct {
	Completed    bool
	Flushes      int
	FlushLimit   bool
	Propagations int
	Duration     time.Duration
	SpecStats    specialize.Stats
}

// Mark renders the paper's ✓/✗ symbol.
func (c Table1Cell) Mark() string {
	if c.Completed {
		return "ok"
	}
	return "FAIL"
}

// FlushStr renders the flush count like the paper (">1000" at the cap).
func (c Table1Cell) FlushStr() string {
	if c.FlushLimit {
		return fmt.Sprintf(">%d", c.Flushes-1)
	}
	return fmt.Sprint(c.Flushes)
}

// Table1Row is one jQuery version's results.
type Table1Row struct {
	Version  workload.JQueryVersion
	Baseline Table1Cell
	Spec     Table1Cell
	DetDOM   Table1Cell
	Err      error
}

// RunTable1 reproduces Table 1. The three cells of each version row are
// independent analyses; they fan out across cfg.Workers pool workers and
// reassemble in row-major submission order, so the returned rows — and
// FormatTable1's rendering of them — are byte-identical to a serial run
// for every worker count.
func RunTable1(cfg Config) []Table1Row {
	cfg = cfg.withDefaults()
	versions := workload.JQueryVersions
	type cellOut struct {
		cell Table1Cell
		err  error
	}
	const kinds = 3 // baseline, spec, spec+detdom
	outs, qs := batch.MapCtx(cfg.Ctx, cfg.pool(), len(versions)*kinds, func(i int) cellOut {
		src := workload.JQuery(versions[i/kinds])
		var out cellOut
		switch i % kinds {
		case 0:
			out.cell, out.err = baselineCell(src, cfg)
		case 1:
			out.cell, out.err = specCell(src, false, cfg)
		default:
			out.cell, out.err = specCell(src, true, cfg)
		}
		return out
	})
	for _, q := range qs {
		outs[q.Index].err = q.Err
	}
	rows := make([]Table1Row, 0, len(versions))
	for ri, v := range versions {
		row := Table1Row{Version: v}
		base, spec, det := outs[ri*kinds], outs[ri*kinds+1], outs[ri*kinds+2]
		// Keep the serial path's error precedence: the first failing stage
		// sets Err and the later cells stay zero.
		switch {
		case base.err != nil:
			row.Err = base.err
		case spec.err != nil:
			row.Baseline, row.Err = base.cell, spec.err
		case det.err != nil:
			row.Baseline, row.Spec, row.Err = base.cell, spec.cell, det.err
		default:
			row.Baseline, row.Spec, row.DetDOM = base.cell, spec.cell, det.cell
		}
		rows = append(rows, row)
	}
	return rows
}

// RunTable1Version runs a single row serially (used by benchmarks).
func RunTable1Version(v workload.JQueryVersion, cfg Config) Table1Row {
	return runTable1Row(v, cfg.withDefaults())
}

func runTable1Row(v workload.JQueryVersion, cfg Config) Table1Row {
	row := Table1Row{Version: v}
	src := workload.JQuery(v)

	cell, err := baselineCell(src, cfg)
	if err != nil {
		row.Err = err
		return row
	}
	row.Baseline = cell

	// Spec and Spec+DetDOM: dynamic facts, specialization, then points-to
	// on the specialized program.
	for _, detDOM := range []bool{false, true} {
		cell, err := specCell(src, detDOM, cfg)
		if err != nil {
			row.Err = err
			return row
		}
		if detDOM {
			row.DetDOM = cell
		} else {
			row.Spec = cell
		}
	}
	return row
}

// baselineCell runs the plain points-to analysis on the original program.
func baselineCell(src string, cfg Config) (Table1Cell, error) {
	_, mod, err := cfg.compile("jquery.js", src)
	if err != nil {
		return Table1Cell{}, err
	}
	start := time.Now()
	base, err := pointsto.AnalyzeGuarded(mod, pointsto.Options{
		Budget: cfg.Budget, Tracer: cfg.Tracer, Ctx: cfg.Ctx, Deadline: cfg.Deadline,
	})
	if err != nil {
		return Table1Cell{}, err
	}
	return Table1Cell{
		// An interrupted solve is an under-approximation — same ✗ as a
		// budget blowout.
		Completed:    !base.BudgetExceeded && base.Interrupted == nil,
		Propagations: base.Propagations,
		Duration:     time.Since(start),
	}, nil
}

func specCell(src string, detDOM bool, cfg Config) (Table1Cell, error) {
	dyn, err := RunDynamic(src, detDOM, cfg)
	if err != nil {
		return Table1Cell{}, err
	}
	if dyn.RunErr != nil {
		return Table1Cell{}, fmt.Errorf("dynamic run: %w", dyn.RunErr)
	}
	cell := Table1Cell{Flushes: dyn.Stats.HeapFlushes, FlushLimit: dyn.FlushLimit}
	res, err := specialize.Specialize(dyn.Prog, dyn.Mod, dyn.Store, specialize.Options{})
	if err != nil {
		return cell, err
	}
	cell.SpecStats = res.Stats
	specSrc := ast.Print(res.Program)
	_, mod, err := cfg.compile("jquery-spec.js", specSrc)
	if err != nil {
		return cell, fmt.Errorf("specialized output does not compile: %w", err)
	}
	start := time.Now()
	pt, err := pointsto.AnalyzeGuarded(mod, pointsto.Options{
		Budget: cfg.Budget, Tracer: cfg.Tracer, Ctx: cfg.Ctx, Deadline: cfg.Deadline,
	})
	if err != nil {
		return cell, err
	}
	cell.Completed = !pt.BudgetExceeded && pt.Interrupted == nil
	cell.Propagations = pt.Propagations
	cell.Duration = time.Since(start)
	return cell, nil
}

// Table1Metrics publishes Table 1 outcomes into a metrics registry with
// version/config labels. Rows are iterated in slice order, so repeated
// exports of the same results are identical.
func Table1Metrics(rows []Table1Row, m *obs.Metrics) {
	for _, r := range rows {
		if r.Err != nil {
			m.Counter(fmt.Sprintf(`table1_errors_total{version=%q}`, r.Version)).Inc()
			continue
		}
		for _, c := range []struct {
			name string
			cell Table1Cell
		}{
			{"baseline", r.Baseline},
			{"spec", r.Spec},
			{"spec_detdom", r.DetDOM},
		} {
			labels := fmt.Sprintf(`{version=%q,config=%q}`, r.Version, c.name)
			m.Counter("table1_propagations_total" + labels).Add(int64(c.cell.Propagations))
			m.Gauge("table1_completed" + labels).Set(boolGauge(c.cell.Completed))
			m.Gauge("table1_flushes" + labels).Set(float64(c.cell.Flushes))
			m.Gauge("table1_duration_seconds" + labels).Set(c.cell.Duration.Seconds())
		}
	}
}

// EvalStudyMetrics publishes the §5.2 study counts into a metrics registry.
// Failure reasons iterate in the fixed reporting order (not map order) so
// dumps are deterministic.
func EvalStudyMetrics(s *EvalStudy, m *obs.Metrics) {
	mode := "dom"
	if s.DetDOM {
		mode = "detdom"
	}
	labels := fmt.Sprintf(`{mode=%q}`, mode)
	m.Counter("evalstudy_benchmarks_total" + labels).Add(int64(s.Total))
	m.Counter("evalstudy_runnable_total" + labels).Add(int64(s.Runnable))
	m.Counter("evalstudy_handled_total" + labels).Add(int64(s.Handled))
	m.Counter("evalstudy_beyond_syntactic_total" + labels).Add(int64(s.OnlyOurs))
	for _, r := range []string{"indeterminate-argument", "not-covered", "indeterminate-callee", "indeterminate-loop-bound", "parse-failed", "residual-eval"} {
		if n := s.ByReason[r]; n > 0 {
			m.Counter(fmt.Sprintf("evalstudy_failures_total{mode=%q,reason=%q}", mode, r)).Add(int64(n))
		}
	}
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// FormatTable1 renders rows like the paper's Table 1.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %-10s %-16s %-16s\n", "jQuery Version", "Baseline", "Spec", "Spec+DetDOM")
	for _, r := range rows {
		if r.Err != nil {
			fmt.Fprintf(&b, "%-16s ERROR: %v\n", r.Version, r.Err)
			continue
		}
		fmt.Fprintf(&b, "%-16s %-10s %-16s %-16s\n", r.Version,
			r.Baseline.Mark(),
			fmt.Sprintf("%s (%s)", r.Spec.Mark(), r.Spec.FlushStr()),
			fmt.Sprintf("%s (%s)", r.DetDOM.Mark(), r.DetDOM.FlushStr()))
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// §5.2: eval elimination

// EvalOutcome classifies one corpus benchmark.
type EvalOutcome struct {
	Name     string
	Runnable bool
	// Handled means the specialized program has no statically reachable
	// eval site left.
	Handled bool
	// Reason is the dominant failure category when not handled.
	Reason string
	// SyntacticHandled reports whether the purely syntactic
	// unevalizer-style baseline also eliminates every eval.
	SyntacticHandled bool
	// Sites are the per-site statuses from the specializer.
	Sites []specialize.EvalSite
	Err   error
}

// EvalStudy reproduces the §5.2 numbers.
type EvalStudy struct {
	DetDOM     bool
	Total      int
	Runnable   int
	Handled    int
	ByReason   map[string]int
	OnlyOurs   int // handled by us, not by the syntactic baseline
	Benchmarks []EvalOutcome
}

// RunEvalStudy runs the corpus through the pipeline. The benchmarks are
// independent and fan out across cfg.Workers pool workers; aggregation
// folds the outcomes in corpus submission order, so the study counts and
// FormatEvalStudy's rendering are byte-identical to a serial run.
func RunEvalStudy(detDOM bool, cfg Config) *EvalStudy {
	cfg = cfg.withDefaults()
	corpus := workload.EvalCorpus()
	outs, qs := batch.MapCtx(cfg.Ctx, cfg.pool(), len(corpus), func(i int) EvalOutcome {
		return evalOne(corpus[i], detDOM, cfg)
	})
	for _, q := range qs {
		outs[q.Index] = EvalOutcome{Name: corpus[q.Index].Name, Err: q.Err}
	}
	study := &EvalStudy{DetDOM: detDOM, ByReason: map[string]int{}}
	for _, out := range outs {
		study.Total++
		if out.Runnable {
			study.Runnable++
			if out.Handled {
				study.Handled++
				if !out.SyntacticHandled {
					study.OnlyOurs++
				}
			} else {
				study.ByReason[out.Reason]++
			}
		}
		study.Benchmarks = append(study.Benchmarks, out)
	}
	return study
}

func evalOne(b workload.EvalBenchmark, detDOM bool, cfg Config) EvalOutcome {
	out := EvalOutcome{Name: b.Name}
	dyn, err := RunDynamic(b.Source, detDOM, cfg)
	if err != nil {
		out.Err = err
		return out
	}
	if dyn.RunErr != nil {
		// The benchmark cannot be run (missing code / unsupported DOM API),
		// mirroring the paper's four disregarded programs.
		out.Runnable = false
		return out
	}
	out.Runnable = true
	out.SyntacticHandled = syntacticBaselineHandles(dyn.Prog)

	res, err := specialize.Specialize(dyn.Prog, dyn.Mod, dyn.Store, specialize.Options{EliminateEval: true})
	if err != nil {
		out.Err = err
		return out
	}
	out.Sites = res.EvalSites

	specSrc := ast.Print(res.Program)
	_, mod, err := cfg.compile("spec.js", specSrc)
	if err != nil {
		out.Err = fmt.Errorf("specialized output does not compile: %w", err)
		return out
	}
	pt, err := pointsto.AnalyzeGuarded(mod, pointsto.Options{
		Budget: cfg.Budget, Tracer: cfg.Tracer, Ctx: cfg.Ctx, Deadline: cfg.Deadline,
	})
	if err != nil {
		out.Err = err
		return out
	}
	out.Handled = len(pt.EvalSites) == 0 && !pt.BudgetExceeded && pt.Interrupted == nil
	if !out.Handled {
		out.Reason = worstReason(res.EvalSites)
	}
	return out
}

// worstReason picks the dominant non-eliminated status for reporting.
func worstReason(sites []specialize.EvalSite) string {
	best := specialize.EvalEliminated
	for _, s := range sites {
		if s.Status > best {
			best = s.Status
		}
	}
	if best == specialize.EvalEliminated {
		return "residual-eval"
	}
	return best.String()
}

// syntacticBaselineHandles implements an unevalizer-style purely syntactic
// check: every eval call's argument must be a string literal (or a
// concatenation of literals) at the call site. This is deliberately cruder
// than the real unevalizer (which runs its own constant propagation), but
// captures its defining restriction: "their analysis requires the
// concatenation to be a syntactic part of the eval argument expression".
func syntacticBaselineHandles(prog *ast.Program) bool {
	ok := true
	ast.Walk(prog, func(n ast.Node) bool {
		call, isCall := n.(*ast.Call)
		if !isCall {
			return true
		}
		id, isIdent := call.Callee.(*ast.Ident)
		if !isIdent || id.Name != "eval" {
			return true
		}
		if len(call.Args) != 1 || !syntacticConst(call.Args[0]) {
			ok = false
		}
		return true
	})
	return ok
}

func syntacticConst(x ast.Expr) bool {
	switch x := x.(type) {
	case *ast.StringLit:
		return true
	case *ast.Binary:
		return x.Op == "+" && syntacticConst(x.L) && syntacticConst(x.R)
	default:
		return false
	}
}

// FormatEvalStudy renders the study like §5.2's prose numbers.
func FormatEvalStudy(s *EvalStudy) string {
	var b strings.Builder
	mode := "conservative DOM"
	if s.DetDOM {
		mode = "determinate DOM (unsound, §5.1)"
	}
	fmt.Fprintf(&b, "eval elimination study [%s]\n", mode)
	fmt.Fprintf(&b, "  benchmarks: %d total, %d runnable\n", s.Total, s.Runnable)
	fmt.Fprintf(&b, "  fully specialized: %d of %d\n", s.Handled, s.Runnable)
	fmt.Fprintf(&b, "  handled by us but not by the syntactic baseline: %d\n", s.OnlyOurs)
	if len(s.ByReason) > 0 {
		fmt.Fprintf(&b, "  failures:\n")
		for _, r := range []string{"indeterminate-argument", "not-covered", "indeterminate-callee", "indeterminate-loop-bound", "parse-failed", "residual-eval"} {
			if n := s.ByReason[r]; n > 0 {
				fmt.Fprintf(&b, "    %-26s %d\n", r, n)
			}
		}
	}
	for _, o := range s.Benchmarks {
		status := "excluded (not runnable)"
		if o.Err != nil {
			status = "ERROR: " + o.Err.Error()
		} else if o.Runnable {
			if o.Handled {
				status = "handled"
				if !o.SyntacticHandled {
					status += " (beyond syntactic baseline)"
				}
			} else {
				status = "failed: " + o.Reason
			}
		}
		fmt.Fprintf(&b, "  %-24s %s\n", o.Name, status)
	}
	return b.String()
}
