package experiment

import (
	"fmt"
	"testing"

	"determinacy/internal/core"
	"determinacy/internal/vm"
	"determinacy/internal/workload"
)

// statString renders Stats deterministically (fmt prints map keys sorted).
func statString(s core.Stats) string { return fmt.Sprintf("%+v", s) }

// The bytecode engine must be indistinguishable from the tree walker on
// the paper's evaluation workloads: Table 1 and the §5.2 eval study must
// render byte-identically, cell for cell, under either engine.

func engineCfg(eng vm.Engine) Config {
	return Config{Seed: 7, Workers: 1, Engine: eng}
}

func TestTable1IdenticalAcrossEngines(t *testing.T) {
	tree := FormatTable1(RunTable1(engineCfg(vm.EngineTree)))
	byte1 := FormatTable1(RunTable1(engineCfg(vm.EngineBytecode)))
	if tree != byte1 {
		t.Errorf("Table 1 differs across engines:\ntree:\n%s\nbytecode:\n%s", tree, byte1)
	}
}

func TestTable1RowStatsIdenticalAcrossEngines(t *testing.T) {
	// One row in full detail: the dynamic runs' statistics — steps, flush
	// counts by reason, counterfactual histograms — must match exactly,
	// not just the rendered summary.
	for _, detDOM := range []bool{false, true} {
		rt, err := RunDynamic(workload.JQuery(workload.JQ10), detDOM, engineCfg(vm.EngineTree))
		if err != nil {
			t.Fatal(err)
		}
		rb, err := RunDynamic(workload.JQuery(workload.JQ10), detDOM, engineCfg(vm.EngineBytecode))
		if err != nil {
			t.Fatal(err)
		}
		if rt.RunErr != nil || rb.RunErr != nil {
			t.Fatalf("run errors: tree=%v bytecode=%v", rt.RunErr, rb.RunErr)
		}
		if got, want := statString(rb.Stats), statString(rt.Stats); got != want {
			t.Errorf("detDOM=%v: stats differ:\nbytecode: %s\ntree:     %s", detDOM, got, want)
		}
		ft, fb := rt.Store.Sorted(), rb.Store.Sorted()
		if len(ft) != len(fb) {
			t.Fatalf("detDOM=%v: fact counts differ: tree %d vs bytecode %d", detDOM, len(ft), len(fb))
		}
		for i := range ft {
			a, b := ft[i], fb[i]
			if a.Instr != b.Instr || a.Ctx.Key() != b.Ctx.Key() || a.Seq != b.Seq ||
				a.Det != b.Det || a.Hits != b.Hits || !a.Val.Equal(b.Val) {
				t.Fatalf("detDOM=%v: fact %d differs: tree %+v vs bytecode %+v", detDOM, i, a, b)
			}
		}
	}
}

func TestEvalStudyIdenticalAcrossEngines(t *testing.T) {
	tree := FormatEvalStudy(RunEvalStudy(true, engineCfg(vm.EngineTree)))
	byte1 := FormatEvalStudy(RunEvalStudy(true, engineCfg(vm.EngineBytecode)))
	if tree != byte1 {
		t.Errorf("eval study differs across engines:\ntree:\n%s\nbytecode:\n%s", tree, byte1)
	}
}
