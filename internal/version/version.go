// Package version reports the build identity baked into a binary by the
// Go toolchain: the module version, the VCS revision, and the Go runtime.
// All five CLIs expose it via -version, and detserve echoes it in the
// /healthz payload so a fleet operator can tell which build answered.
package version

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"
)

// String renders the build identity as "version+revision (goX.Y.Z)".
// Binaries built outside a VCS checkout (go test, plain go build of a
// copied tree) report "dev" with no revision.
func String() string {
	v, rev, dirty := "dev", "", false
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
			v = bi.Main.Version
		}
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				dirty = s.Value == "true"
			}
		}
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	// A VCS-stamped module version (pseudo-version or +dirty suffix)
	// already encodes the revision; appending it again just repeats it.
	if rev != "" && !strings.Contains(v, rev) {
		v += "+" + rev
		if dirty {
			v += "-dirty"
		}
	}
	return fmt.Sprintf("%s (%s)", v, runtime.Version())
}
