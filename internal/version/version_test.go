package version

import (
	"runtime"
	"strings"
	"testing"
)

func TestStringShape(t *testing.T) {
	s := String()
	if s == "" {
		t.Fatal("version string is empty")
	}
	if !strings.Contains(s, runtime.Version()) {
		t.Errorf("version %q does not name the Go runtime %q", s, runtime.Version())
	}
	if !strings.HasPrefix(s, "dev") && !strings.HasPrefix(s, "v") {
		t.Errorf("version %q starts with neither a module version nor the dev fallback", s)
	}
}
