package facts

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"determinacy/internal/ir"
)

// wireFact is the JSON wire form of a fact.
type wireFact struct {
	Instr int      `json:"instr"`
	Ctx   [][2]int `json:"ctx,omitempty"`
	Seq   int      `json:"seq,omitempty"`
	Det   bool     `json:"det"`
	Val   wireSnap `json:"val"`
	Hits  int      `json:"hits,omitempty"`
}

type wireSnap struct {
	Kind int     `json:"kind"`
	Bool bool    `json:"bool,omitempty"`
	Num  float64 `json:"num,omitempty"`
	// NumS carries non-finite numbers ("NaN", "+Inf", "-Inf"), which JSON
	// has no literal for and encoding/json refuses to emit. Without it a
	// store holding a 0/0 fact could not be encoded at all.
	NumS    string `json:"nums,omitempty"`
	Str     string `json:"str,omitempty"`
	Alloc   int    `json:"alloc,omitempty"`
	FnIndex int    `json:"fn,omitempty"`
	Native  string `json:"native,omitempty"`
}

// encodeNum splits a float into its JSON-safe parts. Negative zero also
// travels as a string: omitempty drops a -0.0 Num field (it compares equal
// to zero), which would silently decode as +0.
func encodeNum(n float64) (float64, string) {
	switch {
	case math.IsNaN(n):
		return 0, "NaN"
	case math.IsInf(n, 1):
		return 0, "+Inf"
	case math.IsInf(n, -1):
		return 0, "-Inf"
	case n == 0 && math.Signbit(n):
		return 0, "-0"
	}
	return n, ""
}

func decodeNum(n float64, s string) float64 {
	switch s {
	case "NaN":
		return math.NaN()
	case "+Inf":
		return math.Inf(1)
	case "-Inf":
		return math.Inf(-1)
	case "-0":
		return math.Copysign(0, -1)
	}
	return n
}

// Encode writes the store as JSON lines, one fact per line, in recording
// order. The format is stable across runs of the same module (instruction
// IDs are deterministic), so cmd/detrun output can feed cmd/detspec.
func (s *Store) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, f := range s.All() {
		num, numS := encodeNum(f.Val.Num)
		wf := wireFact{
			Instr: int(f.Instr), Seq: f.Seq, Det: f.Det, Hits: f.Hits,
			Val: wireSnap{
				Kind: int(f.Val.Kind), Bool: f.Val.Bool, Num: num, NumS: numS,
				Str: f.Val.Str, Alloc: f.Val.Alloc, FnIndex: f.Val.FnIndex,
				Native: f.Val.Native,
			},
		}
		for _, e := range f.Ctx {
			wf.Ctx = append(wf.Ctx, [2]int{int(e.Site), e.Seq})
		}
		if err := enc.Encode(wf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Decode reads a store previously written by Encode. Decoded facts merge
// with any facts already present, with the usual join semantics.
func Decode(r io.Reader) (*Store, error) {
	s := NewStore()
	dec := json.NewDecoder(r)
	for {
		var wf wireFact
		if err := dec.Decode(&wf); err == io.EOF {
			return s, nil
		} else if err != nil {
			return nil, fmt.Errorf("facts: decode: %w", err)
		}
		var ctx Context
		for _, e := range wf.Ctx {
			ctx = append(ctx, ContextEntry{Site: ir.ID(e[0]), Seq: e[1]})
		}
		val := Snapshot{
			Kind: ValueKind(wf.Val.Kind), Bool: wf.Val.Bool,
			Num: decodeNum(wf.Val.Num, wf.Val.NumS),
			Str: wf.Val.Str, Alloc: wf.Val.Alloc, FnIndex: wf.Val.FnIndex,
			Native: wf.Val.Native,
		}
		s.Record(ir.ID(wf.Instr), ctx, wf.Seq, wf.Det, val)
		if wf.Hits > 1 {
			if f, ok := s.Lookup(ir.ID(wf.Instr), ctx, wf.Seq); ok {
				f.Hits = wf.Hits
			}
		}
	}
}

// Restrict returns a copy of the store containing only facts at program
// points below limit. Multi-run merging uses it to exclude runtime-lowered
// eval code, whose instruction IDs are not stable across executions.
func (s *Store) Restrict(limit ir.ID) *Store {
	out := NewStore()
	out.MaxSeq = s.MaxSeq
	for _, f := range s.All() {
		if f.Instr >= limit {
			continue
		}
		out.Record(f.Instr, f.Ctx, f.Seq, f.Det, f.Val)
		if nf, ok := out.Lookup(f.Instr, f.Ctx, f.Seq); ok {
			nf.Hits = f.Hits
		}
	}
	return out
}

// Generalize projects the store onto context-insensitive facts: a program
// point whose every observation (across all contexts and occurrences) is
// determinate with the same value yields one unqualified fact. This is the
// "shallower calling contexts" direction the paper's §7 sketches: such
// facts hold at the point under *any* stack.
func (s *Store) Generalize() *Store {
	out := NewStore()
	byInstr := map[ir.ID][]*Fact{}
	var order []ir.ID
	for _, f := range s.All() {
		if _, seen := byInstr[f.Instr]; !seen {
			order = append(order, f.Instr)
		}
		byInstr[f.Instr] = append(byInstr[f.Instr], f)
	}
	for _, id := range order {
		fs := byInstr[id]
		det := true
		val := fs[0].Val
		hits := 0
		for _, f := range fs {
			hits += f.Hits
			if !f.Det || !val.Equal(f.Val) {
				det = false
			}
		}
		out.Record(id, nil, 0, det, val)
		if f, ok := out.Lookup(id, nil, 0); ok {
			f.Hits = hits
		}
	}
	return out
}
