// Package facts stores determinacy facts: statements of the form
//
//	⟦e⟧ c = v   or   ⟦e⟧ c = ?
//
// meaning the expression at a given program point has value v (or is
// indeterminate) whenever execution reaches that point under calling
// context c. Program points are IR instruction IDs; contexts are stacks of
// call-site instruction IDs, each qualified with an occurrence sequence
// number so that distinct dynamic executions of the same call site (e.g.
// successive loop iterations, the paper's 24₀ vs 24₁) yield distinct facts.
package facts

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"determinacy/internal/ir"
)

// ContextEntry is one call-stack element: the call-site instruction plus the
// occurrence number of that call within its own enclosing context.
type ContextEntry struct {
	Site ir.ID
	Seq  int
}

// Context is a full call stack from the program entry point down to the
// frame containing the program point, per the paper ("determinacy facts
// inferred by our dynamic analysis are always qualified with a complete call
// stack").
type Context []ContextEntry

// Key renders a context as a compact map key.
func (c Context) Key() string {
	return string(appendContext(make([]byte, 0, 12*len(c)), c))
}

// appendContext renders c into b exactly as Context.Key does. Fact keys
// are built on every recorded observation — the hottest path of the whole
// instrumented run — so the rendering avoids fmt entirely.
func appendContext(b []byte, c Context) []byte {
	for i, e := range c {
		if i > 0 {
			b = append(b, '>')
		}
		b = strconv.AppendInt(b, int64(e.Site), 10)
		b = append(b, '.')
		b = strconv.AppendInt(b, int64(e.Seq), 10)
	}
	return b
}

// Clone returns an independent copy of c.
func (c Context) Clone() Context {
	out := make(Context, len(c))
	copy(out, c)
	return out
}

// ValueKind classifies a snapshotted value.
type ValueKind int

// Snapshot kinds.
const (
	VUndefined ValueKind = iota
	VNull
	VBool
	VNumber
	VString
	VObject
	VFunction
)

// Snapshot is a comparable image of a runtime value. Object identity is
// captured by allocation number, which is only meaningful within a single
// execution: across runs the soundness theorem relates heaps by an address
// bijection µ that is never materialized, so cross-run comparisons must use
// EquivalentAcrossRuns rather than Equal.
type Snapshot struct {
	Kind  ValueKind
	Bool  bool
	Num   float64
	Str   string
	Alloc int
	// FnIndex identifies the ir.Function of closures, which is stable
	// across executions (unlike allocation numbers under indeterminacy).
	FnIndex int
	// Native names built-in functions.
	Native string
}

// Equal reports whether two snapshots denote the same value. NaN equals NaN
// here: facts compare identity of values, not IEEE semantics.
func (s Snapshot) Equal(o Snapshot) bool {
	if s.Kind != o.Kind {
		return false
	}
	switch s.Kind {
	case VUndefined, VNull:
		return true
	case VBool:
		return s.Bool == o.Bool
	case VNumber:
		return s.Num == o.Num || (s.Num != s.Num && o.Num != o.Num)
	case VString:
		return s.Str == o.Str
	case VFunction:
		if s.FnIndex != 0 || o.FnIndex != 0 {
			return s.FnIndex == o.FnIndex
		}
		return s.Native == o.Native
	default:
		return s.Alloc == o.Alloc
	}
}

// EquivalentAcrossRuns reports whether two snapshots taken in different
// executions may denote the same value. Allocation numbers are
// execution-local — an indeterminate branch that allocates a different
// number of objects in each run shifts every later allocation number even
// when the objects themselves correspond under the address bijection µ — so
// plain objects compare by kind only. Function identity (ir.Function index
// or native name) and primitives are stable across runs and compare exactly.
func (s Snapshot) EquivalentAcrossRuns(o Snapshot) bool {
	if s.Kind == VObject {
		return o.Kind == VObject
	}
	return s.Equal(o)
}

func (s Snapshot) String() string {
	switch s.Kind {
	case VUndefined:
		return "undefined"
	case VNull:
		return "null"
	case VBool:
		return fmt.Sprint(s.Bool)
	case VNumber:
		return fmt.Sprint(s.Num)
	case VString:
		return fmt.Sprintf("%q", s.Str)
	case VFunction:
		if s.Native != "" {
			return "native:" + s.Native
		}
		return fmt.Sprintf("fn#%d", s.FnIndex)
	default:
		return fmt.Sprintf("obj#%d", s.Alloc)
	}
}

// Fact is one determinacy fact.
type Fact struct {
	Instr ir.ID
	Ctx   Context
	// Seq is the occurrence number of the instruction within its activation
	// context (distinct loop iterations of a non-call point).
	Seq int
	// Det reports whether the value is determinate at this point.
	Det bool
	// Val is the (first observed) value; meaningful also when Det is false,
	// as the concretely observed value.
	Val Snapshot
	// Hits counts how many times this (instr, ctx, seq) was observed.
	Hits int
}

// Store accumulates facts from one or more instrumented runs.
type Store struct {
	m     map[string]*Fact
	order []string
	// Conflicts records keys where two runs claimed different determinate
	// values — impossible if the analysis is sound; tests assert emptiness.
	Conflicts []string
	// MaxSeq caps per-(instr,ctx) occurrence tracking; occurrences beyond
	// the cap are joined into the fact with Seq == MaxSeq.
	MaxSeq int
	// keyBuf is Record's scratch key buffer. Probing the map through
	// m[string(keyBuf)] compiles to an allocation-free lookup, so repeat
	// observations (the overwhelming majority) cost no heap traffic.
	keyBuf []byte
	// arena chunk-allocates Fact values so each first observation costs an
	// amortized slice append instead of an individual heap object. Chunks
	// are abandoned (never reallocated) once full, so &arena[i] pointers
	// stay valid for the life of the store.
	arena []Fact
	// lastCtxRender/lastCtxClone share one Context clone across facts
	// recorded under the same call stack: a frame records every one of its
	// facts under a single context, so cloning per fact is pure waste.
	lastCtxRender string
	lastCtxClone  Context
}

// NewStore creates an empty fact store.
func NewStore() *Store {
	return &Store{m: make(map[string]*Fact), MaxSeq: 128}
}

func key(instr ir.ID, ctx Context, seq int) string {
	return string(appendKey(nil, instr, ctx, seq))
}

// appendKey renders the map key for (instr, ctx, seq) into b.
func appendKey(b []byte, instr ir.ID, ctx Context, seq int) []byte {
	b = strconv.AppendInt(b, int64(instr), 10)
	b = append(b, '|')
	b = appendContext(b, ctx)
	b = append(b, '|')
	b = strconv.AppendInt(b, int64(seq), 10)
	return b
}

// newFact hands out the next slot of the current arena chunk, starting a
// fresh chunk when the current one fills. Full chunks are left behind with
// live pointers into them, so the append below can never reallocate.
func (s *Store) newFact() *Fact {
	if len(s.arena) == cap(s.arena) {
		s.arena = make([]Fact, 0, 512)
	}
	s.arena = append(s.arena, Fact{})
	return &s.arena[len(s.arena)-1]
}

// Record adds one observation. Repeated observations of the same point,
// context and occurrence join: any indeterminate observation or value
// mismatch makes the fact indeterminate. The return value reports whether
// this observation invalidated a previously determinate fact (the obs layer
// surfaces these as fact-invalidate events).
func (s *Store) Record(instr ir.ID, ctx Context, seq int, det bool, val Snapshot) bool {
	if seq > s.MaxSeq {
		seq = s.MaxSeq
	}
	s.keyBuf = strconv.AppendInt(s.keyBuf[:0], int64(instr), 10)
	s.keyBuf = append(s.keyBuf, '|')
	c0 := len(s.keyBuf)
	s.keyBuf = appendContext(s.keyBuf, ctx)
	c1 := len(s.keyBuf)
	s.keyBuf = append(s.keyBuf, '|')
	s.keyBuf = strconv.AppendInt(s.keyBuf, int64(seq), 10)
	f, ok := s.m[string(s.keyBuf)]
	if !ok {
		k := string(s.keyBuf)
		if s.lastCtxClone == nil || s.lastCtxRender != k[c0:c1] {
			s.lastCtxClone = ctx.Clone()
			s.lastCtxRender = k[c0:c1]
		}
		nf := s.newFact()
		*nf = Fact{Instr: instr, Ctx: s.lastCtxClone, Seq: seq, Det: det, Val: val, Hits: 1}
		s.m[k] = nf
		s.order = append(s.order, k)
		return false
	}
	f.Hits++
	wasDet := f.Det
	if !det {
		f.Det = false
	}
	if f.Det && !f.Val.Equal(val) {
		// Two observations at the nominally same dynamic point disagree:
		// the key did not discriminate the occurrences (occurrence-cap
		// folding, or native-initiated callback frames sharing their
		// parent's context). Joining to indeterminate keeps the store
		// sound.
		f.Det = false
	}
	return wasDet && !f.Det
}

// Merge folds facts from another run into s. A determinate fact in either
// store with values that cannot denote the same result marks a conflict
// (analysis bug); a point determinate in one store and absent in the other
// stays as-is — facts from different runs are all sound and combine by
// union (paper §7). Because the two stores come from different executions,
// values compare with EquivalentAcrossRuns: object facts whose allocation
// numbers differ are not conflicts (allocation numbering is run-local), but
// the merged fact keeps only the kind-level claim, so it joins to
// indeterminate rather than asserting either run's allocation number.
func (s *Store) Merge(o *Store) {
	for _, k := range o.order {
		of := o.m[k]
		f, ok := s.m[k]
		if !ok {
			cp := *of
			cp.Ctx = of.Ctx.Clone()
			s.m[k] = &cp
			s.order = append(s.order, k)
			continue
		}
		f.Hits += of.Hits
		switch {
		case f.Det && of.Det && !f.Val.EquivalentAcrossRuns(of.Val):
			f.Det = false
			s.Conflicts = append(s.Conflicts, k)
		case f.Det && of.Det && !f.Val.Equal(of.Val):
			// Same value modulo µ but different run-local allocation
			// numbers: neither number is meaningful in the merged store.
			f.Det = false
		case !of.Det:
			f.Det = false
		}
	}
}

// All returns every fact in recording order.
func (s *Store) All() []*Fact {
	out := make([]*Fact, 0, len(s.order))
	for _, k := range s.order {
		out = append(out, s.m[k])
	}
	return out
}

// Len reports the number of stored facts.
func (s *Store) Len() int { return len(s.m) }

// NumDeterminate reports how many stored facts are determinate.
func (s *Store) NumDeterminate() int {
	n := 0
	for _, k := range s.order {
		if s.m[k].Det {
			n++
		}
	}
	return n
}

// InvalidateSaturated joins every fact in the occurrence-cap bucket
// (Seq == MaxSeq) to indeterminate, reporting how many determinate facts it
// demoted. The cap bucket aggregates ALL occurrences beyond MaxSeq, so its
// facts are only trustworthy once the run that produced them ran to
// completion: a truncated run has observed just a prefix of the bucket's
// occurrences, and an unobserved later occurrence could disagree with the
// recorded value. Partial seals call this before exposing the store.
func (s *Store) InvalidateSaturated() int {
	n := 0
	for _, k := range s.order {
		if f := s.m[k]; f.Seq == s.MaxSeq && f.Det {
			f.Det = false
			n++
		}
	}
	return n
}

// Lookup finds the fact for an exact (instr, ctx, seq) triple. Occurrences
// beyond the cap fold into the cap bucket, mirroring Record.
func (s *Store) Lookup(instr ir.ID, ctx Context, seq int) (*Fact, bool) {
	if seq > s.MaxSeq {
		seq = s.MaxSeq
	}
	f, ok := s.m[key(instr, ctx, seq)]
	return f, ok
}

// AtInstr returns all facts recorded for a program point, across contexts.
func (s *Store) AtInstr(instr ir.ID) []*Fact {
	var out []*Fact
	for _, k := range s.order {
		if f := s.m[k]; f.Instr == instr {
			out = append(out, f)
		}
	}
	return out
}

// DeterminateAt reports whether every observation of instr (in any context)
// was determinate with the same value, returning that value. This is the
// context-insensitive projection clients use when they do not care about
// stacks.
func (s *Store) DeterminateAt(instr ir.ID) (Snapshot, bool) {
	var val Snapshot
	found := false
	for _, f := range s.AtInstr(instr) {
		if !f.Det {
			return Snapshot{}, false
		}
		if !found {
			val = f.Val
			found = true
		} else if !val.Equal(f.Val) {
			return Snapshot{}, false
		}
	}
	return val, found
}

// Render formats facts for display, resolving instruction IDs to source
// lines via the module. Facts render like the paper:
//
//	⟦ point@14 ⟧ 16.0→4.0 = 23
func Render(m *ir.Module, fs []*Fact) string {
	var b strings.Builder
	for _, f := range fs {
		b.WriteString(RenderFact(m, f))
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderFact formats one fact.
func RenderFact(m *ir.Module, f *Fact) string {
	var b strings.Builder
	b.WriteString("[[ ")
	if in := m.InstrAt(f.Instr); in != nil {
		fmt.Fprintf(&b, "%s @%s", ir.InstrString(in), in.IPos())
	} else {
		fmt.Fprintf(&b, "#%d", f.Instr)
	}
	b.WriteString(" ]] ")
	if len(f.Ctx) == 0 {
		b.WriteString("·")
	}
	for i, e := range f.Ctx {
		if i > 0 {
			b.WriteString("→")
		}
		if in := m.InstrAt(e.Site); in != nil {
			fmt.Fprintf(&b, "L%d_%d", in.IPos().Line, e.Seq)
		} else {
			fmt.Fprintf(&b, "%d_%d", e.Site, e.Seq)
		}
	}
	if f.Seq > 0 {
		fmt.Fprintf(&b, " (occ %d)", f.Seq)
	}
	if f.Det {
		fmt.Fprintf(&b, " = %s", f.Val)
	} else {
		b.WriteString(" = ?")
	}
	return b.String()
}

// Sorted returns facts ordered by instruction, then context key, for stable
// golden output.
func (s *Store) Sorted() []*Fact {
	out := s.All()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Instr != out[j].Instr {
			return out[i].Instr < out[j].Instr
		}
		ki, kj := out[i].Ctx.Key(), out[j].Ctx.Key()
		if ki != kj {
			return ki < kj
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}
