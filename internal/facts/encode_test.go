package facts_test

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"determinacy/internal/facts"
	"determinacy/internal/ir"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := facts.NewStore()
	s.Record(1, nil, 0, true, num(42))
	s.Record(2, ctx(10, 0, 20, 1), 3, false, str("x"))
	s.Record(3, ctx(5, 2), 0, true, facts.Snapshot{Kind: facts.VFunction, FnIndex: 7})
	s.Record(4, nil, 0, true, facts.Snapshot{Kind: facts.VObject, Alloc: 9})

	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	d, err := facts.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != s.Len() {
		t.Fatalf("decoded %d facts, want %d", d.Len(), s.Len())
	}
	for _, f := range s.All() {
		g, ok := d.Lookup(f.Instr, f.Ctx, f.Seq)
		if !ok {
			t.Errorf("fact %d missing after round trip", f.Instr)
			continue
		}
		if g.Det != f.Det || !g.Val.Equal(f.Val) || g.Hits != f.Hits {
			t.Errorf("fact %d changed: %+v vs %+v", f.Instr, g, f)
		}
	}
}

// Round-trip property over arbitrary primitive facts.
func TestEncodeDecodeQuick(t *testing.T) {
	f := func(instr uint16, site uint16, seq uint8, det bool, n float64, s string, kind uint8) bool {
		store := facts.NewStore()
		var snap facts.Snapshot
		switch kind % 4 {
		case 0:
			snap = facts.Snapshot{Kind: facts.VNumber, Num: n}
		case 1:
			snap = facts.Snapshot{Kind: facts.VString, Str: s}
		case 2:
			snap = facts.Snapshot{Kind: facts.VBool, Bool: det}
		default:
			snap = facts.Snapshot{Kind: facts.VUndefined}
		}
		c := ctx(int(site), 0)
		store.Record(ir.ID(instr), c, int(seq), det, snap)
		var buf bytes.Buffer
		if err := store.Encode(&buf); err != nil {
			return false
		}
		back, err := facts.Decode(&buf)
		if err != nil {
			return false
		}
		g, ok := back.Lookup(ir.ID(instr), c, int(seq))
		return ok && g.Det == det && g.Val.Equal(snap)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := facts.Decode(bytes.NewBufferString("{not json")); err == nil {
		t.Error("expected decode error")
	}
}

func TestGeneralize(t *testing.T) {
	s := facts.NewStore()
	// Same value under two contexts: generalizes determinate.
	s.Record(1, ctx(10, 0), 0, true, num(5))
	s.Record(1, ctx(20, 0), 0, true, num(5))
	// Different values under two contexts: generalizes indeterminate.
	s.Record(2, ctx(10, 0), 0, true, str("a"))
	s.Record(2, ctx(20, 0), 0, true, str("b"))
	// Indeterminate anywhere: indeterminate.
	s.Record(3, ctx(10, 0), 0, false, num(0))

	g := s.Generalize()
	if g.Len() != 3 {
		t.Fatalf("generalized %d points, want 3", g.Len())
	}
	if f, ok := g.Lookup(1, nil, 0); !ok || !f.Det || f.Val.Num != 5 {
		t.Errorf("point 1: %+v", f)
	}
	if f, _ := g.Lookup(2, nil, 0); f.Det {
		t.Error("point 2 must generalize to indeterminate")
	}
	if f, _ := g.Lookup(3, nil, 0); f.Det {
		t.Error("point 3 must stay indeterminate")
	}
}

func TestRestrict(t *testing.T) {
	s := facts.NewStore()
	s.Record(5, nil, 0, true, num(1))
	s.Record(50, nil, 0, true, num(2))
	r := s.Restrict(10)
	if r.Len() != 1 {
		t.Fatalf("restricted to %d facts, want 1", r.Len())
	}
	if _, ok := r.Lookup(50, nil, 0); ok {
		t.Error("fact beyond the limit survived")
	}
}

// TestEncodeNonFiniteNumbers: JSON has no literal for NaN or the infinities,
// and encoding/json errors out on them — a store holding a 0/0 fact must
// still round-trip (they travel in the "nums" field).
func TestEncodeNonFiniteNumbers(t *testing.T) {
	s := facts.NewStore()
	s.Record(1, nil, 0, true, facts.Snapshot{Kind: facts.VNumber, Num: math.NaN()})
	s.Record(2, nil, 0, true, facts.Snapshot{Kind: facts.VNumber, Num: math.Inf(1)})
	s.Record(3, nil, 0, false, facts.Snapshot{Kind: facts.VNumber, Num: math.Inf(-1)})
	s.Record(4, nil, 0, true, facts.Snapshot{Kind: facts.VNumber, Num: math.Copysign(0, -1)})

	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	d, err := facts.Decode(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	check := func(instr int, want func(float64) bool, desc string) {
		f, ok := d.Lookup(ir.ID(instr), nil, 0)
		if !ok {
			t.Fatalf("fact %d missing after round trip", instr)
		}
		if !want(f.Val.Num) {
			t.Errorf("fact %d: got %v, want %s", instr, f.Val.Num, desc)
		}
	}
	check(1, math.IsNaN, "NaN")
	check(2, func(n float64) bool { return math.IsInf(n, 1) }, "+Inf")
	check(3, func(n float64) bool { return math.IsInf(n, -1) }, "-Inf")
	check(4, func(n float64) bool { return n == 0 && math.Signbit(n) }, "-0")
}
