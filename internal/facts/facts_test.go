package facts_test

import (
	"testing"
	"testing/quick"

	"determinacy/internal/facts"
	"determinacy/internal/ir"
)

func num(n float64) facts.Snapshot { return facts.Snapshot{Kind: facts.VNumber, Num: n} }
func str(s string) facts.Snapshot  { return facts.Snapshot{Kind: facts.VString, Str: s} }
func ctx(entries ...int) facts.Context {
	var c facts.Context
	for i := 0; i < len(entries); i += 2 {
		c = append(c, facts.ContextEntry{Site: ir.ID(entries[i]), Seq: entries[i+1]})
	}
	return c
}

func TestRecordAndLookup(t *testing.T) {
	s := facts.NewStore()
	s.Record(1, ctx(10, 0), 0, true, num(42))
	f, ok := s.Lookup(1, ctx(10, 0), 0)
	if !ok || !f.Det || f.Val.Num != 42 {
		t.Fatalf("lookup: %+v ok=%v", f, ok)
	}
	if _, ok := s.Lookup(1, ctx(10, 1), 0); ok {
		t.Error("different seq in context must be a different key")
	}
	if _, ok := s.Lookup(1, ctx(10, 0), 1); ok {
		t.Error("different occurrence must be a different key")
	}
}

func TestRepeatJoins(t *testing.T) {
	s := facts.NewStore()
	s.Record(1, nil, 0, true, num(1))
	s.Record(1, nil, 0, true, num(1))
	if f, _ := s.Lookup(1, nil, 0); !f.Det || f.Hits != 2 {
		t.Errorf("same value repeat: %+v", f)
	}
	s.Record(1, nil, 0, true, num(2))
	if f, _ := s.Lookup(1, nil, 0); f.Det {
		t.Error("conflicting values must join to indeterminate")
	}
	s.Record(2, nil, 0, true, num(1))
	s.Record(2, nil, 0, false, num(1))
	if f, _ := s.Lookup(2, nil, 0); f.Det {
		t.Error("indeterminate observation must stick")
	}
}

func TestOccurrenceCap(t *testing.T) {
	s := facts.NewStore()
	s.MaxSeq = 4
	for i := 0; i < 10; i++ {
		s.Record(1, nil, i, true, num(float64(i)))
	}
	// Occurrences 0..3 exact; 4.. folded into seq 4.
	for i := 0; i < 4; i++ {
		if f, ok := s.Lookup(1, nil, i); !ok || !f.Det {
			t.Errorf("occ %d should be exact and determinate", i)
		}
	}
	f, ok := s.Lookup(1, nil, 4)
	if !ok || f.Det {
		t.Errorf("folded occurrences must be indeterminate: %+v", f)
	}
	if f.Hits != 6 {
		t.Errorf("folded hits = %d, want 6", f.Hits)
	}
}

func TestMergeUnionAndConflicts(t *testing.T) {
	a := facts.NewStore()
	a.Record(1, nil, 0, true, num(1))
	a.Record(2, nil, 0, true, num(2))

	b := facts.NewStore()
	b.Record(2, nil, 0, true, num(2))
	b.Record(3, nil, 0, false, num(9))

	a.Merge(b)
	if a.Len() != 3 {
		t.Errorf("merged store has %d facts, want 3", a.Len())
	}
	if len(a.Conflicts) != 0 {
		t.Errorf("unexpected conflicts: %v", a.Conflicts)
	}

	c := facts.NewStore()
	c.Record(1, nil, 0, true, num(99)) // disagrees with a
	a.Merge(c)
	if len(a.Conflicts) == 0 {
		t.Error("conflicting determinate facts across runs must be flagged")
	}
	if f, _ := a.Lookup(1, nil, 0); f.Det {
		t.Error("conflicted fact must become indeterminate")
	}
}

// TestMergeObjectAllocsAreRunLocal: two runs that determinately allocate
// "the same" object at a point can disagree on the allocation number when an
// earlier indeterminate branch allocates a different number of objects in
// each run (found by detfuzz, seed 878). That is not a conflict — the
// soundness theorem's address bijection µ is per-run-pair — but the merged
// fact must not assert either run's allocation number, so it joins to
// indeterminate.
func TestMergeObjectAllocsAreRunLocal(t *testing.T) {
	obj := func(alloc int) facts.Snapshot {
		return facts.Snapshot{Kind: facts.VObject, Alloc: alloc}
	}
	a := facts.NewStore()
	a.Record(1, nil, 0, true, obj(85))
	b := facts.NewStore()
	b.Record(1, nil, 0, true, obj(83))
	a.Merge(b)
	if len(a.Conflicts) != 0 {
		t.Errorf("object facts with run-local alloc numbers flagged as conflict: %v", a.Conflicts)
	}
	if f, _ := a.Lookup(1, nil, 0); f.Det {
		t.Error("merged object fact with differing allocs must join to indeterminate")
	}

	// An object vs a primitive at the same point IS a conflict.
	c := facts.NewStore()
	c.Record(1, nil, 0, true, num(7))
	a2 := facts.NewStore()
	a2.Record(1, nil, 0, true, obj(85))
	a2.Merge(c)
	if len(a2.Conflicts) != 1 {
		t.Errorf("object vs number must conflict, got %v", a2.Conflicts)
	}

	// Closures compare by function index across runs: same index is fine
	// even with differing allocs, different index conflicts.
	fn := func(idx, alloc int) facts.Snapshot {
		return facts.Snapshot{Kind: facts.VFunction, FnIndex: idx, Alloc: alloc}
	}
	d := facts.NewStore()
	d.Record(2, nil, 0, true, fn(3, 10))
	e := facts.NewStore()
	e.Record(2, nil, 0, true, fn(3, 99))
	d.Merge(e)
	if len(d.Conflicts) != 0 {
		t.Errorf("same-function closures must merge cleanly: %v", d.Conflicts)
	}
	if f, _ := d.Lookup(2, nil, 0); !f.Det {
		t.Error("same-function closure fact must stay determinate")
	}
	g := facts.NewStore()
	g.Record(2, nil, 0, true, fn(4, 10))
	d.Merge(g)
	if len(d.Conflicts) != 1 {
		t.Errorf("different-function closures must conflict: %v", d.Conflicts)
	}
}

func TestDeterminateAt(t *testing.T) {
	s := facts.NewStore()
	s.Record(7, ctx(1, 0), 0, true, str("x"))
	s.Record(7, ctx(2, 0), 0, true, str("x"))
	if v, ok := s.DeterminateAt(7); !ok || v.Str != "x" {
		t.Errorf("context-insensitive projection failed: %v %v", v, ok)
	}
	s.Record(7, ctx(3, 0), 0, true, str("y"))
	if _, ok := s.DeterminateAt(7); ok {
		t.Error("differing values across contexts must not project")
	}
}

func TestSnapshotEqual(t *testing.T) {
	nan := facts.Snapshot{Kind: facts.VNumber, Num: nan()}
	if !nan.Equal(nan) {
		t.Error("NaN snapshots must compare equal (identity, not IEEE)")
	}
	if num(1).Equal(str("1")) {
		t.Error("kind mismatch must not be equal")
	}
	f1 := facts.Snapshot{Kind: facts.VFunction, FnIndex: 3, Alloc: 10}
	f2 := facts.Snapshot{Kind: facts.VFunction, FnIndex: 3, Alloc: 99}
	if !f1.Equal(f2) {
		t.Error("closures compare by function index, not allocation")
	}
	n1 := facts.Snapshot{Kind: facts.VFunction, Native: "eval"}
	n2 := facts.Snapshot{Kind: facts.VFunction, Native: "parseInt"}
	if n1.Equal(n2) {
		t.Error("different natives must differ")
	}
}

func nan() float64 {
	z := 0.0
	return z / z
}

// TestSnapshotEqualProperties checks reflexivity and symmetry with
// testing/quick over arbitrary snapshots.
func TestSnapshotEqualProperties(t *testing.T) {
	mk := func(kind uint8, b bool, n float64, s string, alloc, fnIdx int) facts.Snapshot {
		return facts.Snapshot{
			Kind: facts.ValueKind(int(kind) % 7),
			Bool: b, Num: n, Str: s,
			Alloc: alloc, FnIndex: fnIdx,
		}
	}
	refl := func(kind uint8, b bool, n float64, s string, alloc, fnIdx int) bool {
		v := mk(kind, b, n, s, alloc, fnIdx)
		return v.Equal(v)
	}
	if err := quick.Check(refl, nil); err != nil {
		t.Errorf("reflexivity: %v", err)
	}
	sym := func(k1, k2 uint8, b1, b2 bool, n1, n2 float64, s1, s2 string) bool {
		v1 := mk(k1, b1, n1, s1, 1, 2)
		v2 := mk(k2, b2, n2, s2, 1, 2)
		return v1.Equal(v2) == v2.Equal(v1)
	}
	if err := quick.Check(sym, nil); err != nil {
		t.Errorf("symmetry: %v", err)
	}
}

// TestContextKeyInjective: distinct contexts must render distinct keys.
func TestContextKeyInjective(t *testing.T) {
	f := func(a, b []uint16) bool {
		ca := make(facts.Context, len(a))
		for i, x := range a {
			ca[i] = facts.ContextEntry{Site: ir.ID(x % 100), Seq: int(x) / 100 % 10}
		}
		cb := make(facts.Context, len(b))
		for i, x := range b {
			cb[i] = facts.ContextEntry{Site: ir.ID(x % 100), Seq: int(x) / 100 % 10}
		}
		sameCtx := len(ca) == len(cb)
		if sameCtx {
			for i := range ca {
				if ca[i] != cb[i] {
					sameCtx = false
					break
				}
			}
		}
		return (ca.Key() == cb.Key()) == sameCtx
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	c := ctx(5, 0, 6, 1)
	d := c.Clone()
	d[0].Seq = 99
	if c[0].Seq == 99 {
		t.Error("Clone must be independent")
	}
}

// TestFactKeyCollisionResistance records facts under crafted near-miss
// coordinates — digit sequences that straddle the boundaries between the
// instruction ID, context entries, and occurrence number — and requires the
// store to keep them all distinct. A collision in the internal key encoding
// would silently merge facts from different program points.
func TestFactKeyCollisionResistance(t *testing.T) {
	type coord struct {
		instr ir.ID
		ctx   facts.Context
		seq   int
	}
	coords := []coord{
		{1, nil, 23},
		{12, nil, 3},
		{123, nil, 0},
		{1, ctx(2, 3), 4},
		{12, ctx(3, 4), 0},
		{1, ctx(23, 4), 0},
		{1, ctx(2, 34), 0},
		{1, ctx(2, 3, 4, 5), 0},
		{1, ctx(2, 3), 45},
		{1, ctx(23, 4, 5, 0), 0},
		{11, ctx(1, 1), 1},
		{1, ctx(11, 1), 1},
		{1, ctx(1, 11), 1},
		{1, ctx(1, 1), 11},
		{111, nil, 1},
		{11, ctx(1, 0), 1},
	}
	s := facts.NewStore()
	for i, c := range coords {
		s.Record(c.instr, c.ctx, c.seq, true, num(float64(i)))
	}
	if s.Len() != len(coords) {
		t.Fatalf("store holds %d facts for %d distinct coordinates — key collision", s.Len(), len(coords))
	}
	for i, c := range coords {
		f, ok := s.Lookup(c.instr, c.ctx, c.seq)
		if !ok {
			t.Fatalf("coordinate %d not found", i)
		}
		if f.Val.Num != float64(i) {
			t.Errorf("coordinate %d returns fact %v — keys collide", i, f.Val.Num)
		}
	}
}

func TestInvalidateSaturated(t *testing.T) {
	s := facts.NewStore()
	s.MaxSeq = 4
	// Exact occurrences plus a cap bucket that happens to agree so far —
	// the shape a truncated run leaves behind.
	for i := 0; i < 6; i++ {
		s.Record(1, nil, i, true, num(7))
	}
	s.Record(2, nil, 0, true, num(1))
	if f, _ := s.Lookup(1, nil, 4); !f.Det {
		t.Fatal("precondition: agreeing cap bucket should be determinate")
	}
	if got := s.InvalidateSaturated(); got != 1 {
		t.Fatalf("InvalidateSaturated() = %d, want 1", got)
	}
	if f, _ := s.Lookup(1, nil, 4); f.Det {
		t.Error("cap bucket must be indeterminate after a partial seal")
	}
	for i := 0; i < 4; i++ {
		if f, _ := s.Lookup(1, nil, i); !f.Det {
			t.Errorf("exact occurrence %d must survive the seal", i)
		}
	}
	if f, _ := s.Lookup(2, nil, 0); !f.Det {
		t.Error("below-cap fact at another point must survive")
	}
	// Idempotent, and a no-op on a store with nothing saturated.
	if got := s.InvalidateSaturated(); got != 0 {
		t.Errorf("second call = %d, want 0", got)
	}
}
