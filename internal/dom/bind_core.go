package dom

import (
	"fmt"

	"determinacy/internal/core"
)

// CoreBinding connects a Document to the instrumented interpreter, applying
// the paper's DOM determinacy policy (§4), or the Spec+DetDOM assumption
// (§5.1) when Deterministic is set.
type CoreBinding struct {
	Doc *Document
	// Deterministic treats all DOM reads and operation results as
	// determinate ("assuming that all properties of DOM objects are
	// determinate, and that operations on the DOM return determinate
	// values" — unsound in general, §5.1).
	Deterministic bool

	a         *core.Analysis
	wrap      map[*Node]*core.DObj
	elemProto *core.DObj
	nextTimer int
	cancelled map[int]bool
}

// InstallCore exposes the document to an instrumented interpreter.
func InstallCore(a *core.Analysis, doc *Document, deterministic bool) *CoreBinding {
	b := &CoreBinding{Doc: doc, a: a, Deterministic: deterministic,
		wrap: map[*Node]*core.DObj{}, cancelled: map[int]bool{}}
	b.setupElemProto()

	g := a.Global
	a.SetGlobal("window", core.ObjV(g, true))

	docObj := a.NewPlainObj()
	docObj.Data = doc
	b.defDocument(docObj)
	a.SetGlobal("document", core.ObjV(docObj, true))

	nav := a.NewPlainObj()
	a.SetProp(nav, "userAgent", core.StringV(doc.UserAgent, b.det()))
	a.SetProp(nav, "appName", core.StringV("Netscape", b.det()))
	a.SetGlobal("navigator", core.ObjV(nav, true))

	loc := a.NewPlainObj()
	a.SetProp(loc, "href", core.StringV(doc.URL, b.det()))
	a.SetProp(loc, "protocol", core.StringV("http:", b.det()))
	a.SetGlobal("location", core.ObjV(loc, true))

	b.defExternal(g, "setTimeout", func(an *core.Analysis, this core.Value, args []core.Value) (core.Value, error) {
		b.nextTimer++
		doc.Handlers = append(doc.Handlers, Handler{Kind: "timeout", Fn: argc(args, 0), TimerID: b.nextTimer})
		return core.NumberV(float64(b.nextTimer), b.det()), nil
	})
	b.defExternal(g, "setInterval", func(an *core.Analysis, this core.Value, args []core.Value) (core.Value, error) {
		b.nextTimer++
		doc.Handlers = append(doc.Handlers, Handler{Kind: "interval", Fn: argc(args, 0), TimerID: b.nextTimer})
		return core.NumberV(float64(b.nextTimer), b.det()), nil
	})
	clear := func(an *core.Analysis, this core.Value, args []core.Value) (core.Value, error) {
		b.cancelled[int(an.ToNumberPub(argc(args, 0)))] = true
		return core.UndefD, nil
	}
	b.defExternal(g, "clearTimeout", clear)
	b.defExternal(g, "clearInterval", clear)
	listenG := func(an *core.Analysis, this core.Value, args []core.Value) (core.Value, error) {
		s, _ := an.ToStringPub(argc(args, 0))
		doc.Handlers = append(doc.Handlers, Handler{Kind: "event", Event: s, Fn: argc(args, 1)})
		return core.UndefD, nil
	}
	b.defExternal(g, "addEventListener", listenG)
	b.defExternal(g, "attachEvent", listenG)
	return b
}

func argc(args []core.Value, i int) core.Value {
	if i < len(args) {
		return args[i]
	}
	return core.UndefD
}

// det is the annotation applied to DOM reads and results.
func (b *CoreBinding) det() bool { return b.Deterministic }

// defRead installs a read-only DOM native (safe during counterfactuals).
func (b *CoreBinding) defRead(o *core.DObj, name string, fn func(*core.Analysis, core.Value, []core.Value) (core.Value, error)) {
	b.a.DefNativeOn(o, name, fn, false)
}

// defExternal installs a mutating DOM native; encountering it during
// counterfactual execution aborts the counterfactual (§4).
func (b *CoreBinding) defExternal(o *core.DObj, name string, fn func(*core.Analysis, core.Value, []core.Value) (core.Value, error)) {
	b.a.DefNativeOn(o, name, fn, true)
}

// Wrap returns the instrumented object for a node.
func (b *CoreBinding) Wrap(n *Node) *core.DObj {
	if n == nil {
		return nil
	}
	if o, ok := b.wrap[n]; ok {
		return o
	}
	o := b.a.NewObj("Object", b.elemProto)
	o.Data = n
	b.a.SetProp(o, "tagName", core.StringV(upper(n.Tag), b.det()))
	b.a.SetProp(o, "nodeName", core.StringV(upper(n.Tag), b.det()))
	b.a.SetProp(o, "nodeType", core.NumberV(1, b.det()))
	b.a.SetProp(o, "style", core.ObjV(b.a.NewPlainObj(), b.det()))
	b.wrap[n] = o
	return o
}

func nodeOfC(v core.Value) *Node {
	if v.Kind != core.Object {
		return nil
	}
	n, _ := v.O.Data.(*Node)
	return n
}

func (b *CoreBinding) wrapVal(n *Node) core.Value {
	if n == nil {
		return core.Value{Kind: core.Null, Det: b.det()}
	}
	return core.ObjV(b.Wrap(n), b.det())
}

func (b *CoreBinding) nodeArray(nodes []*Node) core.Value {
	elems := make([]core.Value, len(nodes))
	for i, n := range nodes {
		elems[i] = b.wrapVal(n)
	}
	arr := b.a.NewArrayObj(elems)
	if !b.det() {
		b.a.MarkObjectIndeterminate(arr)
	}
	return core.ObjV(arr, b.det())
}

func (b *CoreBinding) defDocument(docObj *core.DObj) {
	doc := b.Doc
	a := b.a
	b.defRead(docObj, "getElementById", func(an *core.Analysis, this core.Value, args []core.Value) (core.Value, error) {
		s, _ := an.ToStringPub(argc(args, 0))
		return b.wrapVal(doc.ByID(s)), nil
	})
	b.defRead(docObj, "getElementsByTagName", func(an *core.Analysis, this core.Value, args []core.Value) (core.Value, error) {
		s, _ := an.ToStringPub(argc(args, 0))
		return b.nodeArray(doc.ByTag(s)), nil
	})
	b.defExternal(docObj, "createElement", func(an *core.Analysis, this core.Value, args []core.Value) (core.Value, error) {
		s, _ := an.ToStringPub(argc(args, 0))
		return b.wrapVal(doc.NewNode(s, "")), nil
	})
	b.defExternal(docObj, "createTextNode", func(an *core.Analysis, this core.Value, args []core.Value) (core.Value, error) {
		s, _ := an.ToStringPub(argc(args, 0))
		n := doc.NewNode("#text", "")
		n.Text = s
		return b.wrapVal(n), nil
	})
	b.defExternal(docObj, "write", func(an *core.Analysis, this core.Value, args []core.Value) (core.Value, error) {
		s, _ := an.ToStringPub(argc(args, 0))
		doc.SetInnerHTML(doc.Body, doc.Body.InnerHTML()+s)
		return core.UndefD, nil
	})
	listen := func(an *core.Analysis, this core.Value, args []core.Value) (core.Value, error) {
		s, _ := an.ToStringPub(argc(args, 0))
		doc.Handlers = append(doc.Handlers, Handler{Kind: "event", Event: s, Fn: argc(args, 1)})
		return core.UndefD, nil
	}
	b.defExternal(docObj, "addEventListener", listen)
	b.defExternal(docObj, "attachEvent", listen)
	a.SetProp(docObj, "title", core.StringV(doc.Title, b.det()))
	a.SetProp(docObj, "cookie", core.StringV("", b.det()))
	a.SetProp(docObj, "readyState", core.StringV("loading", b.det()))
	a.SetProp(docObj, "body", b.wrapVal(doc.Body))
	a.SetProp(docObj, "documentElement", b.wrapVal(doc.Root))
}

func (b *CoreBinding) setupElemProto() {
	p := b.a.NewPlainObj()
	b.elemProto = p
	doc := b.Doc

	b.defRead(p, "getElementsByTagName", func(an *core.Analysis, this core.Value, args []core.Value) (core.Value, error) {
		n := nodeOfC(this)
		if n == nil {
			return b.nodeArray(nil), nil
		}
		tag, _ := an.ToStringPub(argc(args, 0))
		var out []*Node
		var walk func(m *Node)
		walk = func(m *Node) {
			for _, c := range m.Children {
				if tag == "*" || c.Tag == tag {
					out = append(out, c)
				}
				walk(c)
			}
		}
		walk(n)
		return b.nodeArray(out), nil
	})
	b.defExternal(p, "appendChild", func(an *core.Analysis, this core.Value, args []core.Value) (core.Value, error) {
		parent, child := nodeOfC(this), nodeOfC(argc(args, 0))
		if parent != nil && child != nil {
			doc.Append(parent, child)
		}
		return argc(args, 0).WithDet(b.det()), nil
	})
	b.defExternal(p, "removeChild", func(an *core.Analysis, this core.Value, args []core.Value) (core.Value, error) {
		parent, child := nodeOfC(this), nodeOfC(argc(args, 0))
		if parent != nil && child != nil {
			doc.Remove(parent, child)
		}
		return argc(args, 0).WithDet(b.det()), nil
	})
	b.defExternal(p, "setAttribute", func(an *core.Analysis, this core.Value, args []core.Value) (core.Value, error) {
		if n := nodeOfC(this); n != nil {
			name, _ := an.ToStringPub(argc(args, 0))
			val, _ := an.ToStringPub(argc(args, 1))
			if name == "id" {
				doc.SetID(n, val)
			} else {
				n.Attrs[name] = val
			}
		}
		return core.UndefD, nil
	})
	b.defRead(p, "getAttribute", func(an *core.Analysis, this core.Value, args []core.Value) (core.Value, error) {
		n := nodeOfC(this)
		if n == nil {
			return core.Value{Kind: core.Null, Det: b.det()}, nil
		}
		name, _ := an.ToStringPub(argc(args, 0))
		if name == "id" {
			return core.StringV(n.ID, b.det()), nil
		}
		if v, ok := n.Attrs[name]; ok {
			return core.StringV(v, b.det()), nil
		}
		return core.Value{Kind: core.Null, Det: b.det()}, nil
	})
	listen := func(an *core.Analysis, this core.Value, args []core.Value) (core.Value, error) {
		s, _ := an.ToStringPub(argc(args, 0))
		doc.Handlers = append(doc.Handlers, Handler{
			Kind: "event", Event: s, Target: nodeOfC(this), Fn: argc(args, 1),
		})
		return core.UndefD, nil
	}
	b.defExternal(p, "addEventListener", listen)
	b.defExternal(p, "attachEvent", listen)
	b.defRead(p, "removeEventListener", func(an *core.Analysis, this core.Value, args []core.Value) (core.Value, error) {
		return core.UndefD, nil
	})

	p.DefineGetter("innerHTML", func(an *core.Analysis, this core.Value, args []core.Value) (core.Value, error) {
		if n := nodeOfC(this); n != nil {
			return core.StringV(n.InnerHTML(), b.det()), nil
		}
		return core.StringV("", b.det()), nil
	})
	p.DefineSetter("innerHTML", func(an *core.Analysis, this core.Value, args []core.Value) (core.Value, error) {
		if n := nodeOfC(this); n != nil {
			s, _ := an.ToStringPub(argc(args, 0))
			doc.SetInnerHTML(n, s)
		}
		return core.UndefD, nil
	})
	p.DefineGetter("id", func(an *core.Analysis, this core.Value, args []core.Value) (core.Value, error) {
		if n := nodeOfC(this); n != nil {
			return core.StringV(n.ID, b.det()), nil
		}
		return core.StringV("", b.det()), nil
	})
	p.DefineSetter("id", func(an *core.Analysis, this core.Value, args []core.Value) (core.Value, error) {
		if n := nodeOfC(this); n != nil {
			s, _ := an.ToStringPub(argc(args, 0))
			doc.SetID(n, s)
		}
		return core.UndefD, nil
	})
	p.DefineGetter("firstChild", func(an *core.Analysis, this core.Value, args []core.Value) (core.Value, error) {
		n := nodeOfC(this)
		if n == nil || len(n.Children) == 0 {
			return core.Value{Kind: core.Null, Det: b.det()}, nil
		}
		return b.wrapVal(n.Children[0]), nil
	})
	p.DefineGetter("parentNode", func(an *core.Analysis, this core.Value, args []core.Value) (core.Value, error) {
		if n := nodeOfC(this); n != nil {
			return b.wrapVal(n.Parent), nil
		}
		return core.Value{Kind: core.Null, Det: b.det()}, nil
	})
	p.DefineGetter("childNodes", func(an *core.Analysis, this core.Value, args []core.Value) (core.Value, error) {
		if n := nodeOfC(this); n != nil {
			return b.nodeArray(n.Children), nil
		}
		return b.nodeArray(nil), nil
	})
	p.DefineGetter("value", func(an *core.Analysis, this core.Value, args []core.Value) (core.Value, error) {
		if n := nodeOfC(this); n != nil {
			return core.StringV(n.Attrs["value"], b.det()), nil
		}
		return core.StringV("", b.det()), nil
	})
	p.DefineSetter("value", func(an *core.Analysis, this core.Value, args []core.Value) (core.Value, error) {
		if n := nodeOfC(this); n != nil {
			s, _ := an.ToStringPub(argc(args, 0))
			n.Attrs["value"] = s
		}
		return core.UndefD, nil
	})
}

// RunHandlers fires registered handlers under the instrumented semantics,
// flushing the heap on entry to each (§4: "since DOM events can fire in any
// order, we perform a heap flush immediately upon entering an event
// handler").
func (b *CoreBinding) RunHandlers(limit int) (int, error) {
	fired := 0
	for i := 0; i < len(b.Doc.Handlers) && fired < limit; i++ {
		h := b.Doc.Handlers[i]
		if h.Kind == "timeout" || h.Kind == "interval" {
			if b.cancelled[h.TimerID] {
				continue
			}
		}
		fn, ok := h.Fn.(core.Value)
		if !ok || !fn.IsCallable() {
			continue
		}
		b.a.FlushHeap("event-handler")
		ev := b.a.NewPlainObj()
		b.a.SetProp(ev, "type", core.StringV(h.Event, b.det()))
		if h.Target != nil {
			b.a.SetProp(ev, "target", b.wrapVal(h.Target))
		}
		fired++
		if _, err := b.a.CallFunction(fn, core.Value{Kind: core.Undefined, Det: false}, []core.Value{core.ObjV(ev, b.det())}); err != nil {
			return fired, fmt.Errorf("dom: handler %d (%s %s): %w", i, h.Kind, h.Event, err)
		}
	}
	return fired, nil
}
