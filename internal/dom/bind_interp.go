package dom

import (
	"fmt"

	"determinacy/internal/interp"
)

// Binding connects a Document to a concrete interpreter.
type Binding struct {
	Doc *Document

	it        *interp.Interp
	wrap      map[*Node]*interp.Obj
	elemProto *interp.Obj
	nextTimer int
	cancelled map[int]bool
}

// Install exposes the document to the interpreter as the standard globals:
// document, window (aliased to the global object), navigator, location,
// setTimeout and friends.
func Install(it *interp.Interp, doc *Document) *Binding {
	b := &Binding{Doc: doc, it: it, wrap: map[*Node]*interp.Obj{}, cancelled: map[int]bool{}}
	b.setupElemProto()

	g := it.Global
	g.Set("window", interp.ObjVal(g)) // window is the global object

	docObj := it.NewPlain()
	docObj.Data = doc
	b.defDocument(docObj)
	g.Set("document", interp.ObjVal(docObj))

	nav := it.NewPlain()
	nav.Set("userAgent", interp.StringVal(doc.UserAgent))
	nav.Set("appName", interp.StringVal("Netscape"))
	g.Set("navigator", interp.ObjVal(nav))

	loc := it.NewPlain()
	loc.Set("href", interp.StringVal(doc.URL))
	loc.Set("protocol", interp.StringVal("http:"))
	g.Set("location", interp.ObjVal(loc))

	b.def(g, "setTimeout", func(i *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		b.nextTimer++
		doc.Handlers = append(doc.Handlers, Handler{Kind: "timeout", Fn: argv(args, 0), TimerID: b.nextTimer})
		return interp.NumberVal(float64(b.nextTimer)), nil
	})
	b.def(g, "setInterval", func(i *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		b.nextTimer++
		doc.Handlers = append(doc.Handlers, Handler{Kind: "interval", Fn: argv(args, 0), TimerID: b.nextTimer})
		return interp.NumberVal(float64(b.nextTimer)), nil
	})
	clear := func(i *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		b.cancelled[int(interp.ToNumber(argv(args, 0)))] = true
		return interp.UndefinedVal, nil
	}
	b.def(g, "clearTimeout", clear)
	b.def(g, "clearInterval", clear)
	b.def(g, "addEventListener", func(i *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		doc.Handlers = append(doc.Handlers, Handler{
			Kind: "event", Event: interp.ToString(argv(args, 0)), Fn: argv(args, 1),
		})
		return interp.UndefinedVal, nil
	})
	b.def(g, "attachEvent", func(i *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		doc.Handlers = append(doc.Handlers, Handler{
			Kind: "event", Event: interp.ToString(argv(args, 0)), Fn: argv(args, 1),
		})
		return interp.UndefinedVal, nil
	})
	return b
}

func argv(args []interp.Value, i int) interp.Value {
	if i < len(args) {
		return args[i]
	}
	return interp.UndefinedVal
}

func (b *Binding) def(o *interp.Obj, name string, fn interp.NativeFunc) {
	o.Set(name, interp.ObjVal(b.it.NewNative(name, fn)))
}

// Wrap returns the interpreter object for a node, creating it on first use.
func (b *Binding) Wrap(n *Node) *interp.Obj {
	if n == nil {
		return nil
	}
	if o, ok := b.wrap[n]; ok {
		return o
	}
	o := b.it.NewObject(b.elemProto)
	o.Data = n
	o.Set("tagName", interp.StringVal(upper(n.Tag)))
	o.Set("nodeName", interp.StringVal(upper(n.Tag)))
	o.Set("nodeType", interp.NumberVal(1))
	o.Set("style", interp.ObjVal(b.it.NewPlain()))
	b.wrap[n] = o
	return o
}

func upper(s string) string {
	out := make([]byte, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'a' && c <= 'z' {
			c -= 32
		}
		out[i] = c
	}
	return string(out)
}

func nodeOf(v interp.Value) *Node {
	if v.Kind != interp.Object {
		return nil
	}
	n, _ := v.O.Data.(*Node)
	return n
}

func (b *Binding) wrapVal(n *Node) interp.Value {
	if n == nil {
		return interp.NullVal
	}
	return interp.ObjVal(b.Wrap(n))
}

func (b *Binding) nodeArray(nodes []*Node) interp.Value {
	elems := make([]interp.Value, len(nodes))
	for i, n := range nodes {
		elems[i] = b.wrapVal(n)
	}
	return interp.ObjVal(b.it.NewArray(elems))
}

func (b *Binding) defDocument(docObj *interp.Obj) {
	doc := b.Doc
	b.def(docObj, "getElementById", func(i *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		return b.wrapVal(doc.ByID(interp.ToString(argv(args, 0)))), nil
	})
	b.def(docObj, "getElementsByTagName", func(i *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		return b.nodeArray(doc.ByTag(interp.ToString(argv(args, 0)))), nil
	})
	b.def(docObj, "createElement", func(i *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		return b.wrapVal(doc.NewNode(interp.ToString(argv(args, 0)), "")), nil
	})
	b.def(docObj, "createTextNode", func(i *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		n := doc.NewNode("#text", "")
		n.Text = interp.ToString(argv(args, 0))
		return b.wrapVal(n), nil
	})
	b.def(docObj, "write", func(i *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		doc.SetInnerHTML(doc.Body, doc.Body.InnerHTML()+interp.ToString(argv(args, 0)))
		return interp.UndefinedVal, nil
	})
	b.def(docObj, "addEventListener", func(i *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		doc.Handlers = append(doc.Handlers, Handler{
			Kind: "event", Event: interp.ToString(argv(args, 0)), Fn: argv(args, 1),
		})
		return interp.UndefinedVal, nil
	})
	b.def(docObj, "attachEvent", func(i *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		doc.Handlers = append(doc.Handlers, Handler{
			Kind: "event", Event: interp.ToString(argv(args, 0)), Fn: argv(args, 1),
		})
		return interp.UndefinedVal, nil
	})
	docObj.Set("title", interp.StringVal(doc.Title))
	docObj.Set("cookie", interp.StringVal(""))
	docObj.Set("readyState", interp.StringVal("loading"))
	docObj.Set("body", b.wrapVal(doc.Body))
	docObj.Set("documentElement", b.wrapVal(doc.Root))
}

func (b *Binding) setupElemProto() {
	p := b.it.NewPlain()
	b.elemProto = p
	doc := b.Doc

	b.def(p, "getElementsByTagName", func(i *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		n := nodeOf(this)
		if n == nil {
			return b.nodeArray(nil), nil
		}
		tag := interp.ToString(argv(args, 0))
		var out []*Node
		var walk func(m *Node)
		walk = func(m *Node) {
			for _, c := range m.Children {
				if tag == "*" || c.Tag == tag {
					out = append(out, c)
				}
				walk(c)
			}
		}
		walk(n)
		return b.nodeArray(out), nil
	})
	b.def(p, "appendChild", func(i *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		parent, child := nodeOf(this), nodeOf(argv(args, 0))
		if parent != nil && child != nil {
			doc.Append(parent, child)
		}
		return argv(args, 0), nil
	})
	b.def(p, "removeChild", func(i *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		parent, child := nodeOf(this), nodeOf(argv(args, 0))
		if parent != nil && child != nil {
			doc.Remove(parent, child)
		}
		return argv(args, 0), nil
	})
	b.def(p, "setAttribute", func(i *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		if n := nodeOf(this); n != nil {
			name := interp.ToString(argv(args, 0))
			val := interp.ToString(argv(args, 1))
			if name == "id" {
				doc.SetID(n, val)
			} else {
				n.Attrs[name] = val
			}
		}
		return interp.UndefinedVal, nil
	})
	b.def(p, "getAttribute", func(i *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		n := nodeOf(this)
		if n == nil {
			return interp.NullVal, nil
		}
		name := interp.ToString(argv(args, 0))
		if name == "id" {
			return interp.StringVal(n.ID), nil
		}
		if v, ok := n.Attrs[name]; ok {
			return interp.StringVal(v), nil
		}
		return interp.NullVal, nil
	})
	listen := func(i *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		doc.Handlers = append(doc.Handlers, Handler{
			Kind: "event", Event: interp.ToString(argv(args, 0)),
			Target: nodeOf(this), Fn: argv(args, 1),
		})
		return interp.UndefinedVal, nil
	}
	b.def(p, "addEventListener", listen)
	b.def(p, "attachEvent", listen)
	b.def(p, "removeEventListener", func(i *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		return interp.UndefinedVal, nil
	})

	// Live accessor properties.
	p.DefineGetter("innerHTML", func(i *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		if n := nodeOf(this); n != nil {
			return interp.StringVal(n.InnerHTML()), nil
		}
		return interp.StringVal(""), nil
	})
	p.DefineSetter("innerHTML", func(i *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		if n := nodeOf(this); n != nil {
			doc.SetInnerHTML(n, interp.ToString(argv(args, 0)))
		}
		return interp.UndefinedVal, nil
	})
	p.DefineGetter("id", func(i *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		if n := nodeOf(this); n != nil {
			return interp.StringVal(n.ID), nil
		}
		return interp.StringVal(""), nil
	})
	p.DefineSetter("id", func(i *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		if n := nodeOf(this); n != nil {
			doc.SetID(n, interp.ToString(argv(args, 0)))
		}
		return interp.UndefinedVal, nil
	})
	p.DefineGetter("firstChild", func(i *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		n := nodeOf(this)
		if n == nil || len(n.Children) == 0 {
			return interp.NullVal, nil
		}
		return b.wrapVal(n.Children[0]), nil
	})
	p.DefineGetter("parentNode", func(i *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		if n := nodeOf(this); n != nil {
			return b.wrapVal(n.Parent), nil
		}
		return interp.NullVal, nil
	})
	p.DefineGetter("childNodes", func(i *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		if n := nodeOf(this); n != nil {
			return b.nodeArray(n.Children), nil
		}
		return b.nodeArray(nil), nil
	})
	p.DefineGetter("value", func(i *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		if n := nodeOf(this); n != nil {
			return interp.StringVal(n.Attrs["value"]), nil
		}
		return interp.StringVal(""), nil
	})
	p.DefineSetter("value", func(i *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		if n := nodeOf(this); n != nil {
			n.Attrs["value"] = interp.ToString(argv(args, 0))
		}
		return interp.UndefinedVal, nil
	})
}

// RunHandlers fires registered handlers (ready/load events, timers, element
// events) in registration order, including handlers registered while
// handling, up to limit invocations. It models ZombieJS driving the page
// after the main script.
func (b *Binding) RunHandlers(limit int) (int, error) {
	fired := 0
	for i := 0; i < len(b.Doc.Handlers) && fired < limit; i++ {
		h := b.Doc.Handlers[i]
		if h.Kind == "timeout" || h.Kind == "interval" {
			if b.cancelled[h.TimerID] {
				continue
			}
		}
		fn, ok := h.Fn.(interp.Value)
		if !ok || !fn.IsCallable() {
			continue
		}
		ev := b.it.NewPlain()
		ev.Set("type", interp.StringVal(h.Event))
		if h.Target != nil {
			ev.Set("target", b.wrapVal(h.Target))
		}
		fired++
		if _, err := b.it.CallFunction(fn, interp.UndefinedVal, []interp.Value{interp.ObjVal(ev)}); err != nil {
			return fired, fmt.Errorf("dom: handler %d (%s %s): %w", i, h.Kind, h.Event, err)
		}
	}
	return fired, nil
}
