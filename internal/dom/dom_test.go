package dom_test

import (
	"strings"
	"testing"

	"determinacy/internal/core"
	"determinacy/internal/dom"
	"determinacy/internal/facts"
	"determinacy/internal/interp"
	"determinacy/internal/ir"
)

func TestDocumentModel(t *testing.T) {
	doc := dom.NewDocument(dom.Options{})
	if doc.ByID("main") == nil || doc.ByID("content") == nil {
		t.Fatal("default page missing identified containers")
	}
	if doc.ByID("nope") != nil {
		t.Error("unknown id must return nil")
	}
	lis := doc.ByTag("li")
	if len(lis) != 3 {
		t.Errorf("got %d li elements, want 3", len(lis))
	}
	all := doc.ByTag("*")
	if len(all) < 8 {
		t.Errorf("document suspiciously small: %d elements", len(all))
	}

	n := doc.NewNode("span", "probe")
	if doc.ByID("probe") != nil {
		t.Error("detached nodes must not be reachable by id")
	}
	doc.Append(doc.Body, n)
	if doc.ByID("probe") != n {
		t.Error("attached node must be reachable by id")
	}
	doc.Remove(doc.Body, n)
	if doc.ByID("probe") != nil {
		t.Error("removed node must not be reachable")
	}
}

func TestInnerHTMLParsing(t *testing.T) {
	doc := dom.NewDocument(dom.Options{})
	div := doc.NewNode("div", "")
	doc.SetInnerHTML(div, "<link/><table></table><a href='x'>text</a>")
	var tags []string
	for _, c := range div.Children {
		tags = append(tags, c.Tag)
	}
	if strings.Join(tags, ",") != "link,table,a" {
		t.Errorf("parsed tags %v", tags)
	}
	if !strings.Contains(div.InnerHTML(), "<link") {
		t.Errorf("render lost children: %s", div.InnerHTML())
	}
}

// runConcrete executes src with the concrete binding and returns output.
func runConcrete(t *testing.T, src string) string {
	t.Helper()
	mod, err := ir.Compile("t.js", src)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	it := interp.New(mod, interp.Options{Out: &buf})
	b := dom.Install(it, dom.NewDocument(dom.Options{}))
	if _, err := it.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if _, err := b.RunHandlers(16); err != nil {
		t.Fatalf("handlers: %v", err)
	}
	return buf.String()
}

func TestConcreteBindingBasics(t *testing.T) {
	out := runConcrete(t, `
		var el = document.getElementById("main");
		console.log(el.tagName, el.id);
		var lis = document.getElementsByTagName("li");
		console.log(lis.length);
		var div = document.createElement("div");
		div.innerHTML = "<link/>";
		console.log(div.getElementsByTagName("link").length);
		div.setAttribute("data-x", "7");
		console.log(div.getAttribute("data-x"));
		console.log(navigator.userAgent.indexOf("Gecko") >= 0);
		console.log(window === globalThis);
	`)
	want := "DIV main\n3\n1\n7\ntrue\ntrue\n"
	if out != want {
		t.Errorf("got:\n%s\nwant:\n%s", out, want)
	}
}

func TestEventHandlersAndTimers(t *testing.T) {
	out := runConcrete(t, `
		document.addEventListener("DOMContentLoaded", function(ev) {
			console.log("ready", ev.type);
		});
		var id = setTimeout(function() { console.log("timer"); }, 10);
		setTimeout(function() { console.log("cancelled"); }, 10);
		clearTimeout(2);
		document.getElementById("main").addEventListener("click", function(ev) {
			console.log("clicked", ev.target.id);
		});
	`)
	want := "ready DOMContentLoaded\ntimer\nclicked main\n"
	if out != want {
		t.Errorf("got:\n%swant:\n%s", out, want)
	}
}

// analyzeDOM runs src under the instrumented interpreter with the core
// binding.
func analyzeDOM(t *testing.T, src string, det bool) (*facts.Store, *core.Analysis, *ir.Module) {
	t.Helper()
	mod, err := ir.Compile("t.js", src)
	if err != nil {
		t.Fatal(err)
	}
	store := facts.NewStore()
	a := core.New(mod, store, core.Options{})
	b := dom.InstallCore(a, dom.NewDocument(dom.Options{}), det)
	if _, err := a.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if _, err := b.RunHandlers(16); err != nil {
		t.Fatalf("handlers: %v", err)
	}
	return store, a, mod
}

// factDetAtLine finds the determinacy of the single register-defining fact
// matching pred on a line.
func factDetAtLine(t *testing.T, store *facts.Store, mod *ir.Module, line int, kind string) (bool, bool) {
	t.Helper()
	for _, f := range store.All() {
		in := mod.InstrAt(f.Instr)
		if in == nil || in.IPos().Line != line {
			continue
		}
		switch kind {
		case "getfield":
			if _, ok := in.(*ir.GetField); ok {
				return f.Det, true
			}
		case "call":
			if _, ok := in.(*ir.Call); ok {
				return f.Det, true
			}
		}
	}
	return false, false
}

func TestDOMDeterminacyPolicy(t *testing.T) {
	src := `
		var ua = navigator.userAgent;
		var el = document.getElementById("main");
		var local = {p: 1};
		var probe = local.p;
	`
	// Conservative DOM: reads indeterminate.
	store, _, mod := analyzeDOM(t, src, false)
	if det, ok := factDetAtLine(t, store, mod, 2, "getfield"); !ok || det {
		t.Errorf("userAgent should be indeterminate (ok=%v det=%v)", ok, det)
	}
	if det, ok := factDetAtLine(t, store, mod, 3, "call"); !ok || det {
		t.Errorf("getElementById result should be indeterminate (ok=%v det=%v)", ok, det)
	}
	// §4: DOM calls only modify DOM structures — no general heap flush, so
	// non-DOM heap state stays determinate.
	if det, ok := factDetAtLine(t, store, mod, 5, "getfield"); !ok || !det {
		t.Errorf("local heap read should stay determinate (ok=%v det=%v)", ok, det)
	}

	// DetDOM: everything determinate.
	dstore, _, dmod := analyzeDOM(t, src, true)
	if det, ok := factDetAtLine(t, dstore, dmod, 2, "getfield"); !ok || !det {
		t.Errorf("DetDOM userAgent should be determinate (ok=%v det=%v)", ok, det)
	}
	if det, ok := factDetAtLine(t, dstore, dmod, 3, "call"); !ok || !det {
		t.Errorf("DetDOM getElementById should be determinate (ok=%v det=%v)", ok, det)
	}
}

func TestHandlerEntryFlush(t *testing.T) {
	src := `
		var state = {x: 1};
		document.addEventListener("load", function() {
			var probe = state.x;
		});
	`
	_, a, _ := analyzeDOM(t, src, true)
	if a.Stats().FlushReasons["event-handler"] != 1 {
		t.Errorf("expected exactly one handler-entry flush, got %v", a.Stats().FlushReasons)
	}
}

func TestCounterfactualAbortsOnDOMMutation(t *testing.T) {
	src := `
		if (Math.random() > 2) {
			var d = document.createElement("div");
		}
	`
	_, a, _ := analyzeDOM(t, src, false)
	if a.Stats().CFAborts == 0 {
		t.Error("counterfactual execution should abort at the External createElement")
	}
	if a.Stats().FlushReasons["cf-abort"] == 0 {
		t.Errorf("abort should flush: %v", a.Stats().FlushReasons)
	}
}

func TestConcreteAndCoreBindingsAgree(t *testing.T) {
	src := `
		var el = document.getElementById("content");
		el.innerHTML = "<span></span>text";
		console.log(el.firstChild.tagName);
		console.log(document.getElementsByTagName("span").length);
		var items = document.getElementById("items");
		console.log(items.childNodes.length);
		console.log(document.title);
	`
	concrete := runConcrete(t, src)

	mod := ir.MustCompile("t.js", src)
	var buf strings.Builder
	a := core.New(mod, facts.NewStore(), core.Options{Out: &buf})
	dom.InstallCore(a, dom.NewDocument(dom.Options{}), false)
	if _, err := a.Run(); err != nil {
		t.Fatal(err)
	}
	if concrete != buf.String() {
		t.Errorf("bindings disagree:\nconcrete:\n%s\ninstrumented:\n%s", concrete, buf.String())
	}
}
