// Package dom is the ZombieJS substitute: a synthetic DOM emulation exposed
// to both the concrete interpreter (internal/interp) and the instrumented
// determinacy interpreter (internal/core).
//
// The determinacy policy follows §4 of the paper:
//
//   - DOM functions only modify DOM data structures, so calling them does
//     not flush the general heap;
//   - return values of DOM functions and reads from DOM data structures are
//     indeterminate;
//   - the heap is flushed on entry to every event handler, since events can
//     fire in any order;
//   - the Deterministic option implements the paper's Spec+DetDOM
//     configuration (§5.1): all DOM properties and operation results are
//     assumed determinate, effectively specializing the program to one
//     browser and one HTML document (unsound in general, used to bound the
//     benefit of a richer DOM model).
package dom

import (
	"fmt"
	"strings"
)

// Node is one element of the host-side document tree.
type Node struct {
	Tag      string
	ID       string
	Text     string
	Attrs    map[string]string
	Children []*Node
	Parent   *Node
	doc      *Document
	// Seq is a stable per-document node number.
	Seq int
}

// Document is the host-side DOM state shared by an emulated page.
type Document struct {
	Root  *Node // <html>
	Head  *Node
	Body  *Node
	Title string
	// UserAgent is reported by navigator.userAgent.
	UserAgent string
	// URL is reported by window.location.href.
	URL string

	byID  map[string]*Node
	nodes []*Node
	nseq  int

	// Handlers registered via addEventListener/setTimeout, in registration
	// order. The host drives them after the main script (RunHandlers in the
	// bindings).
	Handlers []Handler
}

// Handler is a registered event handler or timer callback. Fn is an opaque
// function value owned by the binding that registered it.
type Handler struct {
	Kind   string // "event", "timeout", "interval", "ready"
	Event  string
	Target *Node // nil for window/document-level handlers and timers
	Fn     any
	// TimerID is the setTimeout/setInterval handle used by clearTimeout.
	TimerID int
}

// Options configures a synthetic document.
type Options struct {
	UserAgent string
	URL       string
	Title     string
}

// NewDocument builds the default synthetic page: a small but realistic
// document with identified containers that the workloads select against.
func NewDocument(opts Options) *Document {
	if opts.UserAgent == "" {
		opts.UserAgent = "Mozilla/5.0 (X11; Linux x86_64) Gecko/20100101 detjs/1.0"
	}
	if opts.URL == "" {
		opts.URL = "http://localhost/index.html"
	}
	if opts.Title == "" {
		opts.Title = "determinacy test page"
	}
	d := &Document{
		Title:     opts.Title,
		UserAgent: opts.UserAgent,
		URL:       opts.URL,
		byID:      make(map[string]*Node),
	}
	d.Root = d.NewNode("html", "")
	d.Head = d.NewNode("head", "")
	d.Body = d.NewNode("body", "")
	d.Append(d.Root, d.Head)
	d.Append(d.Root, d.Body)

	main := d.NewNode("div", "main")
	content := d.NewNode("div", "content")
	banner := d.NewNode("div", "banner")
	list := d.NewNode("ul", "items")
	d.Append(d.Body, main)
	d.Append(main, content)
	d.Append(main, banner)
	d.Append(content, list)
	for i := 0; i < 3; i++ {
		li := d.NewNode("li", fmt.Sprintf("item%d", i))
		li.Text = fmt.Sprintf("item %d", i)
		d.Append(list, li)
	}
	form := d.NewNode("form", "mainform")
	input := d.NewNode("input", "query")
	input.Attrs["type"] = "text"
	input.Attrs["value"] = ""
	d.Append(d.Body, form)
	d.Append(form, input)
	return d
}

// NewNode allocates a detached node.
func (d *Document) NewNode(tag, id string) *Node {
	d.nseq++
	n := &Node{Tag: strings.ToLower(tag), ID: id, Attrs: map[string]string{}, doc: d, Seq: d.nseq}
	d.nodes = append(d.nodes, n)
	if id != "" {
		d.byID[id] = n
	}
	return n
}

// Append attaches child to parent, detaching it from any previous parent.
func (d *Document) Append(parent, child *Node) {
	if child.Parent != nil {
		d.Remove(child.Parent, child)
	}
	child.Parent = parent
	parent.Children = append(parent.Children, child)
}

// Remove detaches child from parent; it reports whether it was present.
func (d *Document) Remove(parent, child *Node) bool {
	for i, c := range parent.Children {
		if c == child {
			parent.Children = append(parent.Children[:i], parent.Children[i+1:]...)
			child.Parent = nil
			return true
		}
	}
	return false
}

// ByID looks up an attached element by id.
func (d *Document) ByID(id string) *Node {
	n := d.byID[id]
	if n == nil || !d.attached(n) {
		return nil
	}
	return n
}

func (d *Document) attached(n *Node) bool {
	for cur := n; cur != nil; cur = cur.Parent {
		if cur == d.Root {
			return true
		}
	}
	return false
}

// ByTag collects attached elements with the given tag ("*" for all) in
// document order.
func (d *Document) ByTag(tag string) []*Node {
	tag = strings.ToLower(tag)
	var out []*Node
	var walk func(n *Node)
	walk = func(n *Node) {
		if tag == "*" || n.Tag == tag {
			out = append(out, n)
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(d.Root)
	return out
}

// SetID registers an id change.
func (d *Document) SetID(n *Node, id string) {
	if n.ID != "" {
		delete(d.byID, n.ID)
	}
	n.ID = id
	if id != "" {
		d.byID[id] = n
	}
}

// InnerHTML renders a node's children as simplified HTML.
func (n *Node) InnerHTML() string {
	var b strings.Builder
	for _, c := range n.Children {
		c.render(&b)
	}
	if len(n.Children) == 0 {
		b.WriteString(n.Text)
	}
	return b.String()
}

func (n *Node) render(b *strings.Builder) {
	fmt.Fprintf(b, "<%s", n.Tag)
	if n.ID != "" {
		fmt.Fprintf(b, " id=%q", n.ID)
	}
	for k, v := range n.Attrs {
		fmt.Fprintf(b, " %s=%q", k, v)
	}
	b.WriteString(">")
	if len(n.Children) == 0 {
		b.WriteString(n.Text)
	}
	for _, c := range n.Children {
		c.render(b)
	}
	fmt.Fprintf(b, "</%s>", n.Tag)
}

// SetInnerHTML replaces children with a crude parse of html: it recognizes
// the simple single-tag patterns browser feature detection uses (e.g.
// jQuery's "<link/>", "<table></table>"); anything else becomes text.
func (d *Document) SetInnerHTML(n *Node, html string) {
	n.Children = nil
	n.Text = ""
	s := strings.TrimSpace(html)
	for s != "" {
		if !strings.HasPrefix(s, "<") {
			n.Text = s
			return
		}
		end := strings.IndexByte(s, '>')
		if end < 0 {
			n.Text = s
			return
		}
		tag := strings.Trim(s[1:end], "/ ")
		if i := strings.IndexAny(tag, " \t"); i >= 0 {
			tag = tag[:i]
		}
		child := d.NewNode(tag, "")
		d.Append(n, child)
		s = s[end+1:]
		// Skip a matching close tag if present.
		close := "</" + child.Tag + ">"
		if i := strings.Index(s, close); i >= 0 {
			child.Text = s[:i]
			s = s[i+len(close):]
		}
		s = strings.TrimSpace(s)
	}
}
